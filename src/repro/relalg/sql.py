"""A SQL frontend for the relational-algebra engine.

Answers the paper's research question 1 — "To what extent can existing
query languages be used to capture typical constraints on request
schedules?" — operationally: the paper's Listing 1 SQL text parses and
executes *on this repository's own engine* (see
:class:`repro.protocols.ss2pl_sqlfront.SqlFrontendSS2PLProtocol`),
cross-checked against sqlite3.

Supported subset (everything Listing 1 and typical scheduling rules
need)::

    statement   := [WITH name AS (select) {, name AS (select)}] set_expr
                   [ORDER BY order_item {, order_item}]
    set_expr    := term {(UNION [ALL] | EXCEPT | INTERSECT) term}
    term        := select_core | "(" set_expr ")"
    select_core := SELECT [DISTINCT] select_item {, select_item}
                   FROM from_item {, from_item}
                   {LEFT [OUTER] JOIN from_item ON predicate}
                   [WHERE predicate]
    select_item := * | alias.* | expr [AS name]
    from_item   := table_name [AS] [alias] | "(" set_expr ")" [AS] alias
    predicate   := disjunctions/conjunctions of comparisons,
                   [NOT] EXISTS (select), expr IS [NOT] NULL, parentheses

Notable planning choices:

* ``NOT EXISTS`` subqueries are **decorrelated**: a top-level OR inside
  the subquery's WHERE splits into multiple anti-joins
  (``NOT EXISTS(P1 OR P2) = NOT EXISTS(P1) AND NOT EXISTS(P2)``), and
  each anti-join's equality conjuncts become hash keys — so Listing 1's
  ``RLockedObjects`` runs in linear, not quadratic, time.
* Comma-separated FROM items become cross joins whose predicates the
  optimizer then pushes down / converts to hash joins.

Identifiers are case-insensitive for keywords; table/column names keep
their case.
"""

from __future__ import annotations

import re
from typing import Optional, Sequence, Union

from repro.relalg.expressions import (
    And,
    ColumnRef,
    Expr,
    IsNull,
    Literal,
    Not,
    Or,
    and_,
    col,
    lit,
    or_,
    split_conjuncts,
)
from repro.relalg.query import (
    CTENode,
    DistinctNode,
    FilterNode,
    JoinNode,
    OrderByNode,
    PlanNode,
    ProjectNode,
    Query,
    SetOpNode,
    SourceNode,
    _AliasNode,
)
from repro.relalg.relation import Relation
from repro.relalg.schema import Column, Schema
from repro.relalg.table import Table


class SqlError(Exception):
    """Raised for syntax errors and unsupported constructs."""


# -- lexer ---------------------------------------------------------------------

_KEYWORDS = {
    "select", "distinct", "from", "where", "with", "as", "and", "or",
    "not", "exists", "left", "outer", "join", "on", "union", "all",
    "except", "intersect", "is", "null", "order", "by", "asc", "desc",
    "in",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>--[^\n]*)
  | (?P<NUMBER>\d+\.\d+|\d+)
  | (?P<STRING>'(?:[^']|'')*')
  | (?P<OP><>|!=|<=|>=|=|<|>)
  | (?P<LPAREN>\() | (?P<RPAREN>\))
  | (?P<COMMA>,) | (?P<DOT>\.) | (?P<STAR>\*) | (?P<SEMI>;)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int) -> None:
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise SqlError(f"unexpected character {source[pos]!r} at {pos}")
        kind = match.lastgroup or ""
        text = match.group()
        if kind == "IDENT" and text.lower() in _KEYWORDS:
            tokens.append(_Token("KW", text.lower(), pos))
        elif kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, text, pos))
        pos = match.end()
    tokens.append(_Token("EOF", "", pos))
    return tokens


# -- AST -----------------------------------------------------------------------


class _SelectItem:
    """* | alias.* | expr [AS name]"""

    __slots__ = ("star_qualifier", "is_star", "expr", "alias")

    def __init__(self, is_star=False, star_qualifier=None, expr=None, alias=None):
        self.is_star = is_star
        self.star_qualifier = star_qualifier
        self.expr = expr
        self.alias = alias


class _FromItem:
    __slots__ = ("table", "subquery", "alias")

    def __init__(self, table=None, subquery=None, alias=None):
        self.table = table
        self.subquery = subquery
        self.alias = alias


class _Exists(Expr):
    """EXISTS/NOT EXISTS marker inside a predicate tree.

    Only valid as a top-level WHERE conjunct; the planner rejects other
    positions.  ``bind`` is never called (the planner removes these
    before any binding happens).
    """

    def __init__(self, subquery: "_SelectCore", negated: bool) -> None:
        self.subquery = subquery
        self.negated = negated

    def bind(self, schema):  # pragma: no cover - planner removes these
        raise SqlError("EXISTS is only supported as a top-level conjunct")

    def referenced_columns(self):
        return set()


class _SelectCore:
    __slots__ = (
        "distinct", "items", "from_items", "left_joins", "where",
    )

    def __init__(self):
        self.distinct = False
        self.items: list[_SelectItem] = []
        self.from_items: list[_FromItem] = []
        self.left_joins: list[tuple[_FromItem, Expr]] = []
        self.where: Optional[Expr] = None


class _SetExpr:
    __slots__ = ("left", "op", "right")

    def __init__(self, left, op, right):
        self.left = left
        self.op = op  # "union" | "union_all" | "except" | "intersect"
        self.right = right


class _Statement:
    __slots__ = ("ctes", "body", "order_by")

    def __init__(self):
        self.ctes: list[tuple[str, object]] = []
        self.body = None
        self.order_by: list[tuple[str, bool]] = []


# -- parser --------------------------------------------------------------------


class _Parser:
    def __init__(self, source: str) -> None:
        self._tokens = _tokenize(source)
        self._pos = 0

    @property
    def _cur(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._cur
        self._pos += 1
        return token

    def _accept_kw(self, *words: str) -> Optional[str]:
        if self._cur.kind == "KW" and self._cur.text in words:
            return self._advance().text
        return None

    def _expect_kw(self, word: str) -> None:
        if not self._accept_kw(word):
            raise SqlError(f"expected {word.upper()}, found {self._cur.text!r}")

    def _expect(self, kind: str) -> _Token:
        if self._cur.kind != kind:
            raise SqlError(f"expected {kind}, found {self._cur.text!r}")
        return self._advance()

    # statement := [WITH ...] set_expr [ORDER BY ...]
    def statement(self) -> _Statement:
        stmt = _Statement()
        if self._accept_kw("with"):
            while True:
                name = self._expect("IDENT").text
                self._expect_kw("as")
                self._expect("LPAREN")
                stmt.ctes.append((name, self.set_expr()))
                self._expect("RPAREN")
                if self._cur.kind != "COMMA":
                    break
                self._advance()
        stmt.body = self.set_expr()
        if self._accept_kw("order"):
            self._expect_kw("by")
            while True:
                name = self._column_name()
                descending = False
                if self._accept_kw("desc"):
                    descending = True
                else:
                    self._accept_kw("asc")
                stmt.order_by.append((name, descending))
                if self._cur.kind != "COMMA":
                    break
                self._advance()
        if self._cur.kind == "SEMI":
            self._advance()
        if self._cur.kind != "EOF":
            raise SqlError(f"unexpected trailing input {self._cur.text!r}")
        return stmt

    def _column_name(self) -> str:
        name = self._expect("IDENT").text
        if self._cur.kind == "DOT":
            self._advance()
            name = f"{name}.{self._expect('IDENT').text}"
        return name

    # set_expr := term {(UNION [ALL]|EXCEPT|INTERSECT) term}
    def set_expr(self):
        left = self.term()
        while True:
            if self._accept_kw("union"):
                op = "union_all" if self._accept_kw("all") else "union"
            elif self._accept_kw("except"):
                op = "except"
            elif self._accept_kw("intersect"):
                op = "intersect"
            else:
                return left
            left = _SetExpr(left, op, self.term())

    def term(self):
        if self._cur.kind == "LPAREN":
            self._advance()
            inner = self.set_expr()
            self._expect("RPAREN")
            return inner
        return self.select_core()

    def select_core(self) -> _SelectCore:
        core = _SelectCore()
        self._expect_kw("select")
        core.distinct = bool(self._accept_kw("distinct"))
        core.items.append(self.select_item())
        while self._cur.kind == "COMMA":
            self._advance()
            core.items.append(self.select_item())
        self._expect_kw("from")
        core.from_items.append(self.from_item())
        while True:
            if self._cur.kind == "COMMA":
                self._advance()
                core.from_items.append(self.from_item())
            elif self._accept_kw("left"):
                self._accept_kw("outer")
                self._expect_kw("join")
                item = self.from_item()
                self._expect_kw("on")
                core.left_joins.append((item, self.predicate()))
            else:
                break
        if self._accept_kw("where"):
            core.where = self.predicate()
        return core

    def select_item(self) -> _SelectItem:
        if self._cur.kind == "STAR":
            self._advance()
            return _SelectItem(is_star=True)
        # alias.* needs two-token lookahead.
        if (
            self._cur.kind == "IDENT"
            and self._tokens[self._pos + 1].kind == "DOT"
            and self._tokens[self._pos + 2].kind == "STAR"
        ):
            qualifier = self._advance().text
            self._advance()  # DOT
            self._advance()  # STAR
            return _SelectItem(is_star=True, star_qualifier=qualifier)
        expr = self.expression()
        alias = None
        if self._accept_kw("as"):
            alias = self._expect("IDENT").text
        elif self._cur.kind == "IDENT":
            alias = self._advance().text
        return _SelectItem(expr=expr, alias=alias)

    def from_item(self) -> _FromItem:
        if self._cur.kind == "LPAREN":
            self._advance()
            subquery = self.set_expr()
            self._expect("RPAREN")
            self._accept_kw("as")
            alias = self._expect("IDENT").text
            return _FromItem(subquery=subquery, alias=alias)
        table = self._expect("IDENT").text
        alias = None
        if self._accept_kw("as"):
            alias = self._expect("IDENT").text
        elif self._cur.kind == "IDENT":
            alias = self._advance().text
        return _FromItem(table=table, alias=alias)

    # predicate grammar: or_expr
    def predicate(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        parts = [self._and_expr()]
        while self._accept_kw("or"):
            parts.append(self._and_expr())
        return or_(*parts)

    def _and_expr(self) -> Expr:
        parts = [self._not_expr()]
        while self._accept_kw("and"):
            parts.append(self._not_expr())
        return and_(*parts)

    def _not_expr(self) -> Expr:
        if self._accept_kw("not"):
            if self._accept_kw("exists"):
                return self._exists(negated=True)
            return Not(self._not_expr())
        if self._accept_kw("exists"):
            return self._exists(negated=False)
        return self._comparison()

    def _exists(self, negated: bool) -> Expr:
        self._expect("LPAREN")
        subquery = self.set_expr()
        self._expect("RPAREN")
        if not isinstance(subquery, _SelectCore):
            raise SqlError("EXISTS subquery must be a simple SELECT")
        return _Exists(subquery, negated)

    def _comparison(self) -> Expr:
        if self._cur.kind == "LPAREN":
            # Could be a parenthesized predicate; parse and return.
            self._advance()
            inner = self.predicate()
            self._expect("RPAREN")
            return inner
        left = self.expression()
        if self._accept_kw("is"):
            negated = bool(self._accept_kw("not"))
            self._expect_kw("null")
            check: Expr = IsNull(left)
            return Not(check) if negated else check
        if self._cur.kind != "OP":
            raise SqlError(
                f"expected a comparison operator, found {self._cur.text!r}"
            )
        op = self._advance().text
        right = self.expression()
        mapping = {
            "=": lambda a, b: a == b,
            "<>": lambda a, b: a != b,
            "!=": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }
        return mapping[op](left, right)

    def expression(self) -> Expr:
        token = self._cur
        if token.kind == "NUMBER":
            self._advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return lit(value)
        if token.kind == "STRING":
            self._advance()
            return lit(token.text[1:-1].replace("''", "'"))
        if token.kind == "IDENT":
            return col(self._column_name())
        raise SqlError(f"expected an expression, found {token.text!r}")


# -- planner --------------------------------------------------------------------


class SqlPlanner:
    """Plans parsed SQL against a catalog of tables/relations."""

    def __init__(self, catalog: dict[str, Union[Table, Relation]]) -> None:
        self._catalog = dict(catalog)

    def plan(self, source: str, defer_ctes: bool = False) -> PlanNode:
        """Parse and plan *source*.

        With ``defer_ctes=False`` (default) CTEs are materialized
        eagerly — they are referenced several times in Listing 1, and
        for one-shot interpreted execution sharing beats re-planning.
        With ``defer_ctes=True`` each CTE becomes a shared
        :class:`CTENode` instead, yielding a fully deferred plan that
        reads the catalog's *live* tables — the form
        :class:`~repro.relalg.plan.CompiledPlan` caches across
        scheduler steps (the compiled path computes each shared CTE
        once per execution).
        """
        from repro.relalg.optimizer import optimize_plan

        statement = _Parser(source).statement()
        scope = dict(self._catalog)
        for name, body in statement.ctes:
            if defer_ctes:
                scope[name] = CTENode(
                    _UnqualifyNode(self._plan_set_expr(body, scope)), name
                )
                continue
            cte_plan = optimize_plan(self._plan_set_expr(body, scope))
            relation = cte_plan.execute()
            scope[name] = Relation(relation.schema.unqualified(), relation.rows)
        order_by = statement.order_by
        if order_by and isinstance(statement.body, _SelectCore):
            # SQL permits ordering by source columns dropped from the
            # SELECT list; sort before the projection in that case.
            plan = self._plan_select(
                statement.body, scope, order_by=order_by
            )
            return plan
        plan = self._plan_set_expr(statement.body, scope)
        if order_by:
            plan = OrderByNode(plan, order_by)
        return plan

    def execute(self, source: str, optimize: bool = True) -> Relation:
        from repro.relalg.optimizer import optimize_plan

        plan = self.plan(source)
        if optimize:
            plan = optimize_plan(plan)
        return plan.execute()

    # -- internals ---------------------------------------------------------

    def _plan_set_expr(self, node, scope) -> PlanNode:
        if isinstance(node, _SetExpr):
            return SetOpNode(
                node.op,
                self._plan_set_expr(node.left, scope),
                self._plan_set_expr(node.right, scope),
            )
        if isinstance(node, _SelectCore):
            return self._plan_select(node, scope)
        raise SqlError(f"cannot plan {node!r}")  # pragma: no cover

    def _source(self, item: _FromItem, scope) -> PlanNode:
        if item.subquery is not None:
            inner = self._plan_set_expr(item.subquery, scope)
            return _AliasNode(_UnqualifyNode(inner), item.alias)
        try:
            source = scope[item.table]
        except KeyError:
            raise SqlError(f"unknown table {item.table!r}") from None
        if isinstance(source, PlanNode):  # deferred CTE reference
            return _AliasNode(source, item.alias) if item.alias else source
        return SourceNode(source, item.alias)

    def _plan_select(
        self,
        core: _SelectCore,
        scope,
        order_by: Optional[list[tuple[str, bool]]] = None,
    ) -> PlanNode:
        plan = self._source(core.from_items[0], scope)
        for item in core.from_items[1:]:
            plan = JoinNode(plan, self._source(item, scope), None, "inner")
        for item, on_predicate in core.left_joins:
            plan = JoinNode(
                plan, self._source(item, scope), on_predicate, "left"
            )

        if core.where is not None:
            plain: list[Expr] = []
            exists_items: list[_Exists] = []
            for conjunct in split_conjuncts(core.where):
                if isinstance(conjunct, _Exists):
                    exists_items.append(conjunct)
                elif _contains_exists(conjunct):
                    raise SqlError(
                        "EXISTS is only supported as a top-level conjunct"
                    )
                else:
                    plain.append(conjunct)
            if plain:
                plan = FilterNode(plan, and_(*plain))
            for exists in exists_items:
                plan = self._plan_exists(plan, exists, scope)

        if order_by:
            # Sorting before the projection keeps dropped source columns
            # available as sort keys; projection preserves row order.
            plan = OrderByNode(plan, order_by)
        plan = self._plan_projection(plan, core)
        if core.distinct:
            plan = DistinctNode(plan)
        return plan

    def _plan_exists(self, plan: PlanNode, exists: _Exists, scope) -> PlanNode:
        sub = exists.subquery
        if sub.left_joins or len(sub.from_items) != 1:
            raise SqlError(
                "EXISTS subqueries must have a single FROM item"
            )
        right = self._source(sub.from_items[0], scope)
        right_schema = right.output_schema()
        predicate = sub.where if sub.where is not None else Literal(True)
        if _contains_exists(predicate):
            raise SqlError("nested EXISTS is not supported")

        how = "anti" if exists.negated else "semi"
        if exists.negated and isinstance(predicate, Or):
            # NOT EXISTS(P1 OR P2) == NOT EXISTS(P1) AND NOT EXISTS(P2):
            # each disjunct becomes its own (hash-friendly) anti-join.
            for disjunct in predicate.parts:
                plan = self._one_exists_join(
                    plan, right, right_schema, disjunct, "anti"
                )
            return plan
        return self._one_exists_join(plan, right, right_schema, predicate, how)

    def _one_exists_join(
        self, plan, right, right_schema, predicate, how
    ) -> PlanNode:
        from repro.relalg.optimizer import _covers

        right_only: list[Expr] = []
        joined: list[Expr] = []
        for conjunct in split_conjuncts(predicate):
            if _covers(right_schema, conjunct):
                right_only.append(conjunct)
            else:
                joined.append(conjunct)
        right_plan = (
            FilterNode(right, and_(*right_only)) if right_only else right
        )
        join_predicate = and_(*joined) if joined else Literal(True)
        if not joined:
            # Uncorrelated EXISTS: degenerate but legal — keep left rows
            # iff the (filtered) right side is non-empty.
            return _UncorrelatedExistsNode(
                plan, right_plan, negated=(how == "anti")
            )
        return JoinNode(plan, right_plan, join_predicate, how)

    def _plan_projection(self, plan: PlanNode, core: _SelectCore) -> PlanNode:
        schema = plan.output_schema()
        columns: list[str] = []
        renames: list[Optional[str]] = []
        for item in core.items:
            if item.is_star:
                for column in schema:
                    if (
                        item.star_qualifier is None
                        or column.qualifier == item.star_qualifier
                    ):
                        columns.append(column.qualified_name)
                        renames.append(None)
                continue
            if not isinstance(item.expr, ColumnRef):
                raise SqlError(
                    "only column references are supported in SELECT lists"
                )
            ref = item.expr
            name = f"{ref.qualifier}.{ref.name}" if ref.qualifier else ref.name
            columns.append(name)
            renames.append(item.alias)
        project = ProjectNode(plan, columns)
        if any(renames):
            return _RenameColumnsNode(project, renames)
        return project


def _contains_exists(expr: Expr) -> bool:
    if isinstance(expr, _Exists):
        return True
    for attr in ("parts",):
        for child in getattr(expr, attr, ()):
            if _contains_exists(child):
                return True
    for attr in ("inner", "left", "right"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expr) and _contains_exists(child):
            return True
    return False


class _UnqualifyNode(PlanNode):
    """Strips qualifiers so a subquery can be re-aliased cleanly."""

    def __init__(self, child: PlanNode) -> None:
        self.child = child

    def output_schema(self) -> Schema:
        return self.child.output_schema().unqualified()

    def execute(self) -> Relation:
        relation = self.child.execute()
        return Relation(relation.schema.unqualified(), relation.rows)

    def children(self):
        return [self.child]


class _RenameColumnsNode(PlanNode):
    """Applies SELECT-list aliases (``expr AS name``)."""

    def __init__(self, child: PlanNode, renames: Sequence[Optional[str]]) -> None:
        self.child = child
        self.renames = list(renames)

    def output_schema(self) -> Schema:
        base = self.child.output_schema()
        return Schema(
            [
                Column(new_name) if new_name else column
                for column, new_name in zip(base.columns, self.renames)
            ]
        )

    def execute(self) -> Relation:
        relation = self.child.execute()
        return Relation(self.output_schema(), relation.rows)

    def children(self):
        return [self.child]


class _UncorrelatedExistsNode(PlanNode):
    """(NOT) EXISTS with no correlation: all-or-nothing filter."""

    def __init__(self, left: PlanNode, right: PlanNode, negated: bool) -> None:
        self.left = left
        self.right = right
        self.negated = negated

    def output_schema(self) -> Schema:
        return self.left.output_schema()

    def execute(self) -> Relation:
        left = self.left.execute()
        right_nonempty = bool(self.right.execute().rows)
        keep = right_nonempty != self.negated
        return left if keep else Relation.empty(left.schema)

    def children(self):
        return [self.left, self.right]


def execute_sql(
    source: str, tables: dict[str, Union[Table, Relation]]
) -> Relation:
    """One-shot convenience: parse, plan and execute *source*."""
    return SqlPlanner(tables).execute(source)
