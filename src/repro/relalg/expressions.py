"""Scalar expression language for selections, projections and joins.

Expressions form a small tree (column references, literals, comparisons,
boolean connectives, arithmetic) that *binds* against a schema once and
then evaluates per row as a plain closure — binding resolves column names
to tuple positions ahead of time, so the per-row cost is a few indexed
loads, which matters because the declarative-overhead experiment times
query evaluation.

SQL's three-valued NULL logic is simplified to Python's two-valued logic
with ``None`` propagation in comparisons: any comparison against ``None``
is False (matching how the paper's Listing 1 uses ``IS NULL`` explicitly
where NULL handling matters — we provide :func:`is_null` for that).
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Optional, Sequence

from repro.relalg.schema import Schema

#: A bound expression: a function from row-tuple to value.
Bound = Callable[[tuple], Any]


class Expr:
    """Base class of expression nodes.

    Subclasses implement :meth:`bind`; Python operators are overloaded to
    build comparison/arithmetic/boolean nodes so protocol code reads close
    to SQL: ``col("r.ta") != col("wlo.ta")``.
    """

    def bind(self, schema: Schema) -> Bound:
        raise NotImplementedError

    def referenced_columns(self) -> set[tuple[Optional[str], str]]:
        """Set of (qualifier, name) pairs referenced by the expression —
        used by the optimizer for predicate pushdown."""
        return set()

    # -- comparisons ------------------------------------------------------

    def __eq__(self, other):  # type: ignore[override]
        return Compare(operator.eq, "=", self, _wrap(other))

    def __ne__(self, other):  # type: ignore[override]
        return Compare(operator.ne, "<>", self, _wrap(other))

    def __lt__(self, other):
        return Compare(operator.lt, "<", self, _wrap(other))

    def __le__(self, other):
        return Compare(operator.le, "<=", self, _wrap(other))

    def __gt__(self, other):
        return Compare(operator.gt, ">", self, _wrap(other))

    def __ge__(self, other):
        return Compare(operator.ge, ">=", self, _wrap(other))

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other):
        return Arith(operator.add, "+", self, _wrap(other))

    def __sub__(self, other):
        return Arith(operator.sub, "-", self, _wrap(other))

    def __mul__(self, other):
        return Arith(operator.mul, "*", self, _wrap(other))

    # -- boolean ----------------------------------------------------------

    def __and__(self, other):
        return And([self, _wrap(other)])

    def __or__(self, other):
        return Or([self, _wrap(other)])

    def __invert__(self):
        return Not(self)

    def __hash__(self) -> int:
        return id(self)

    def in_(self, values: Sequence[Any]) -> "Expr":
        return InSet(self, frozenset(values))


def _wrap(value: Any) -> Expr:
    return value if isinstance(value, Expr) else Literal(value)


class ColumnRef(Expr):
    """Reference to a column, optionally qualified: ``col("r.ta")``."""

    __slots__ = ("qualifier", "name")

    def __init__(self, name: str, qualifier: Optional[str] = None) -> None:
        if qualifier is None and "." in name:
            qualifier, name = name.split(".", 1)
        self.qualifier = qualifier
        self.name = name

    def bind(self, schema: Schema) -> Bound:
        pos = schema.resolve(self.name, self.qualifier)
        return operator.itemgetter(pos)

    def referenced_columns(self) -> set[tuple[Optional[str], str]]:
        return {(self.qualifier, self.name)}

    def __repr__(self) -> str:
        if self.qualifier:
            return f"col({self.qualifier}.{self.name})"
        return f"col({self.name})"


class Literal(Expr):
    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def bind(self, schema: Schema) -> Bound:
        value = self.value
        return lambda row: value

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class Compare(Expr):
    """Binary comparison with None propagation (NULL-safe: any comparison
    involving None is False, as in SQL's UNKNOWN treated as not-satisfied)."""

    __slots__ = ("op", "symbol", "left", "right")

    def __init__(self, op: Callable, symbol: str, left: Expr, right: Expr) -> None:
        self.op = op
        self.symbol = symbol
        self.left = left
        self.right = right

    def bind(self, schema: Schema) -> Bound:
        lf, rf, op = self.left.bind(schema), self.right.bind(schema), self.op

        def run(row: tuple) -> bool:
            lv, rv = lf(row), rf(row)
            if lv is None or rv is None:
                return False
            return op(lv, rv)

        return run

    def referenced_columns(self):
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class Arith(Expr):
    __slots__ = ("op", "symbol", "left", "right")

    def __init__(self, op: Callable, symbol: str, left: Expr, right: Expr) -> None:
        self.op = op
        self.symbol = symbol
        self.left = left
        self.right = right

    def bind(self, schema: Schema) -> Bound:
        lf, rf, op = self.left.bind(schema), self.right.bind(schema), self.op

        def run(row: tuple) -> Any:
            lv, rv = lf(row), rf(row)
            if lv is None or rv is None:
                return None
            return op(lv, rv)

        return run

    def referenced_columns(self):
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class And(Expr):
    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Expr]) -> None:
        # Flatten nested ANDs so the optimizer sees one conjunct list.
        flat: list[Expr] = []
        for part in parts:
            if isinstance(part, And):
                flat.extend(part.parts)
            else:
                flat.append(part)
        self.parts = flat

    def bind(self, schema: Schema) -> Bound:
        bound = [p.bind(schema) for p in self.parts]

        def run(row: tuple) -> bool:
            return all(f(row) for f in bound)

        return run

    def referenced_columns(self):
        out: set = set()
        for part in self.parts:
            out |= part.referenced_columns()
        return out

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(p) for p in self.parts) + ")"


class Or(Expr):
    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Expr]) -> None:
        flat: list[Expr] = []
        for part in parts:
            if isinstance(part, Or):
                flat.extend(part.parts)
            else:
                flat.append(part)
        self.parts = flat

    def bind(self, schema: Schema) -> Bound:
        bound = [p.bind(schema) for p in self.parts]

        def run(row: tuple) -> bool:
            return any(f(row) for f in bound)

        return run

    def referenced_columns(self):
        out: set = set()
        for part in self.parts:
            out |= part.referenced_columns()
        return out

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(p) for p in self.parts) + ")"


class Not(Expr):
    __slots__ = ("inner",)

    def __init__(self, inner: Expr) -> None:
        self.inner = inner

    def bind(self, schema: Schema) -> Bound:
        f = self.inner.bind(schema)
        return lambda row: not f(row)

    def referenced_columns(self):
        return self.inner.referenced_columns()

    def __repr__(self) -> str:
        return f"NOT {self.inner!r}"


class IsNull(Expr):
    """SQL ``expr IS NULL`` — needed by Listing 1's outer-join filter."""

    __slots__ = ("inner",)

    def __init__(self, inner: Expr) -> None:
        self.inner = inner

    def bind(self, schema: Schema) -> Bound:
        f = self.inner.bind(schema)
        return lambda row: f(row) is None

    def referenced_columns(self):
        return self.inner.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.inner!r} IS NULL)"


class InSet(Expr):
    """``expr IN (v1, v2, ...)`` against a constant set."""

    __slots__ = ("inner", "values")

    def __init__(self, inner: Expr, values: frozenset) -> None:
        self.inner = inner
        self.values = values

    def bind(self, schema: Schema) -> Bound:
        f, values = self.inner.bind(schema), self.values
        return lambda row: f(row) in values

    def referenced_columns(self):
        return self.inner.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.inner!r} IN {sorted(self.values, key=repr)})"


class Func(Expr):
    """Escape hatch: arbitrary Python function over named column values.

    Kept for application-specific consistency rules that go beyond the
    comparison/arithmetic core (Section 2's "application specific
    consistency models").
    """

    __slots__ = ("fn", "columns", "label")

    def __init__(self, fn: Callable[..., Any], columns: Sequence[str], label: str = "") -> None:
        self.fn = fn
        self.columns = [ColumnRef(c) for c in columns]
        self.label = label or getattr(fn, "__name__", "func")

    def bind(self, schema: Schema) -> Bound:
        getters = [c.bind(schema) for c in self.columns]
        fn = self.fn
        return lambda row: fn(*[g(row) for g in getters])

    def referenced_columns(self):
        out: set = set()
        for c in self.columns:
            out |= c.referenced_columns()
        return out

    def __repr__(self) -> str:
        return f"{self.label}({', '.join(repr(c) for c in self.columns)})"


# -- public constructors -------------------------------------------------


def col(name: str, qualifier: Optional[str] = None) -> ColumnRef:
    """Column reference; accepts ``"name"`` or ``"alias.name"``."""
    return ColumnRef(name, qualifier)


def lit(value: Any) -> Literal:
    """Literal constant."""
    return Literal(value)


def and_(*parts: Expr) -> Expr:
    """N-ary conjunction (empty conjunction is TRUE)."""
    if not parts:
        return Literal(True)
    if len(parts) == 1:
        return parts[0]
    return And(list(parts))


def or_(*parts: Expr) -> Expr:
    """N-ary disjunction (empty disjunction is FALSE)."""
    if not parts:
        return Literal(False)
    if len(parts) == 1:
        return parts[0]
    return Or(list(parts))


def not_(part: Expr) -> Expr:
    return Not(part)


def is_null(part: Expr) -> Expr:
    return IsNull(part)


def func(fn: Callable[..., Any], *columns: str, label: str = "") -> Func:
    return Func(fn, columns, label=label)


def split_conjuncts(expr: Expr) -> list[Expr]:
    """Flatten an expression into its top-level AND-ed conjuncts."""
    if isinstance(expr, And):
        return list(expr.parts)
    return [expr]
