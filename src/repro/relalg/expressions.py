"""Scalar expression language for selections, projections and joins.

Expressions form a small tree (column references, literals, comparisons,
boolean connectives, arithmetic) that *binds* against a schema once and
then evaluates per row as a plain closure — binding resolves column names
to tuple positions ahead of time, so the per-row cost is a few indexed
loads, which matters because the declarative-overhead experiment times
query evaluation.

SQL's three-valued NULL logic is simplified to Python's two-valued logic
with ``None`` propagation in comparisons: any comparison against ``None``
is False (matching how the paper's Listing 1 uses ``IS NULL`` explicitly
where NULL handling matters — we provide :func:`is_null` for that).

Two evaluation strategies share one tree:

* :meth:`Expr.bind` — the interpreted path: each node closes over its
  children's bound functions, so evaluation walks a closure tree per row.
* :func:`compile_expr` — the compiled path: the tree is rendered once to
  Python source (a single function body with no per-node calls) and
  ``compile()``d, so the per-row cost is one function call.  Plan
  compilation (:mod:`repro.relalg.plan`) uses this for every hot
  predicate.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Optional, Sequence

from repro.relalg.schema import Schema

#: A bound expression: a function from row-tuple to value.
Bound = Callable[[tuple], Any]


class _CannotCompile(Exception):
    """Internal: node has no source form; fall back to bind()."""


class _Emitter:
    """Codegen context: schema for column resolution, an environment of
    hoisted constants/functions, and a counter for fresh names."""

    __slots__ = ("schema", "env", "_counter")

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.env: dict[str, Any] = {}
        self._counter = 0

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"_{prefix}{self._counter}"

    def const(self, value: Any) -> str:
        """Hoist a value into the compiled function's globals; inline
        literals with a safe, round-trippable repr."""
        if value is None or value is True or value is False:
            return repr(value)
        if isinstance(value, (int, str)) and not isinstance(value, bool):
            return repr(value)
        name = self.fresh("c")
        self.env[name] = value
        return name


class Expr:
    """Base class of expression nodes.

    Subclasses implement :meth:`bind`; Python operators are overloaded to
    build comparison/arithmetic/boolean nodes so protocol code reads close
    to SQL: ``col("r.ta") != col("wlo.ta")``.
    """

    def bind(self, schema: Schema) -> Bound:
        raise NotImplementedError

    def emit(self, ctx: _Emitter) -> str:
        """Python source fragment computing this node's *value* over a
        row named ``_row`` — see :func:`compile_expr`.  Nodes without a
        source form raise :class:`_CannotCompile` (the compiler then
        falls back to :meth:`bind`)."""
        raise _CannotCompile(type(self).__name__)

    def emit_truth(self, ctx: _Emitter) -> str:
        """Like :meth:`emit` but only the fragment's *truthiness* is
        observed (filter position) — lets AND/OR skip bool() wrapping."""
        return self.emit(ctx)

    def referenced_columns(self) -> set[tuple[Optional[str], str]]:
        """Set of (qualifier, name) pairs referenced by the expression —
        used by the optimizer for predicate pushdown."""
        return set()

    # -- comparisons ------------------------------------------------------

    def __eq__(self, other):  # type: ignore[override]
        return Compare(operator.eq, "=", self, _wrap(other))

    def __ne__(self, other):  # type: ignore[override]
        return Compare(operator.ne, "<>", self, _wrap(other))

    def __lt__(self, other):
        return Compare(operator.lt, "<", self, _wrap(other))

    def __le__(self, other):
        return Compare(operator.le, "<=", self, _wrap(other))

    def __gt__(self, other):
        return Compare(operator.gt, ">", self, _wrap(other))

    def __ge__(self, other):
        return Compare(operator.ge, ">=", self, _wrap(other))

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other):
        return Arith(operator.add, "+", self, _wrap(other))

    def __sub__(self, other):
        return Arith(operator.sub, "-", self, _wrap(other))

    def __mul__(self, other):
        return Arith(operator.mul, "*", self, _wrap(other))

    # -- boolean ----------------------------------------------------------

    def __and__(self, other):
        return And([self, _wrap(other)])

    def __or__(self, other):
        return Or([self, _wrap(other)])

    def __invert__(self):
        return Not(self)

    def __hash__(self) -> int:
        return id(self)

    def in_(self, values: Sequence[Any]) -> "Expr":
        return InSet(self, frozenset(values))


def _wrap(value: Any) -> Expr:
    return value if isinstance(value, Expr) else Literal(value)


#: operator-module callables with a Python infix spelling (codegen).
_PY_INFIX: dict[Callable, str] = {
    operator.eq: "==",
    operator.ne: "!=",
    operator.lt: "<",
    operator.le: "<=",
    operator.gt: ">",
    operator.ge: ">=",
    operator.add: "+",
    operator.sub: "-",
    operator.mul: "*",
}


def _null_guarded(expr: Expr, ctx: _Emitter) -> tuple[str, Optional[str]]:
    """Emit *expr* as ``(value_src, guard_src)``.

    ``guard_src`` is a fragment that is truthy iff the operand is
    non-None; it must be evaluated before ``value_src`` is referenced
    (walrus temporaries make complex operands single-evaluation).  A
    guard of ``None`` means the operand is statically non-None.
    """
    if isinstance(expr, Literal):
        if expr.value is None:
            return "None", "False"
        return ctx.const(expr.value), None
    src = expr.emit(ctx)
    if isinstance(expr, ColumnRef):
        return src, f"{src} is not None"
    temp = ctx.fresh("t")
    return temp, f"({temp} := {src}) is not None"


class ColumnRef(Expr):
    """Reference to a column, optionally qualified: ``col("r.ta")``."""

    __slots__ = ("qualifier", "name")

    def __init__(self, name: str, qualifier: Optional[str] = None) -> None:
        if qualifier is None and "." in name:
            qualifier, name = name.split(".", 1)
        self.qualifier = qualifier
        self.name = name

    def bind(self, schema: Schema) -> Bound:
        pos = schema.resolve(self.name, self.qualifier)
        return operator.itemgetter(pos)

    def emit(self, ctx: _Emitter) -> str:
        pos = ctx.schema.resolve(self.name, self.qualifier)
        return f"_row[{pos}]"

    def referenced_columns(self) -> set[tuple[Optional[str], str]]:
        return {(self.qualifier, self.name)}

    def __repr__(self) -> str:
        if self.qualifier:
            return f"col({self.qualifier}.{self.name})"
        return f"col({self.name})"


class Literal(Expr):
    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def bind(self, schema: Schema) -> Bound:
        value = self.value
        return lambda row: value

    def emit(self, ctx: _Emitter) -> str:
        return ctx.const(self.value)

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


class Compare(Expr):
    """Binary comparison with None propagation (NULL-safe: any comparison
    involving None is False, as in SQL's UNKNOWN treated as not-satisfied)."""

    __slots__ = ("op", "symbol", "left", "right")

    def __init__(self, op: Callable, symbol: str, left: Expr, right: Expr) -> None:
        self.op = op
        self.symbol = symbol
        self.left = left
        self.right = right

    def bind(self, schema: Schema) -> Bound:
        lf, rf, op = self.left.bind(schema), self.right.bind(schema), self.op

        def run(row: tuple) -> bool:
            lv, rv = lf(row), rf(row)
            if lv is None or rv is None:
                return False
            return op(lv, rv)

        return run

    def emit(self, ctx: _Emitter) -> str:
        infix = _PY_INFIX.get(self.op)
        if infix is None:
            raise _CannotCompile(f"comparison op {self.op!r}")
        lval, lguard = _null_guarded(self.left, ctx)
        rval, rguard = _null_guarded(self.right, ctx)
        parts = [g for g in (lguard, rguard) if g is not None]
        parts.append(f"{lval} {infix} {rval}")
        return "(" + " and ".join(parts) + ")"

    def referenced_columns(self):
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class Arith(Expr):
    __slots__ = ("op", "symbol", "left", "right")

    def __init__(self, op: Callable, symbol: str, left: Expr, right: Expr) -> None:
        self.op = op
        self.symbol = symbol
        self.left = left
        self.right = right

    def bind(self, schema: Schema) -> Bound:
        lf, rf, op = self.left.bind(schema), self.right.bind(schema), self.op

        def run(row: tuple) -> Any:
            lv, rv = lf(row), rf(row)
            if lv is None or rv is None:
                return None
            return op(lv, rv)

        return run

    def emit(self, ctx: _Emitter) -> str:
        infix = _PY_INFIX.get(self.op)
        if infix is None:
            raise _CannotCompile(f"arithmetic op {self.op!r}")
        lval, lguard = _null_guarded(self.left, ctx)
        rval, rguard = _null_guarded(self.right, ctx)
        guards = [g for g in (lguard, rguard) if g is not None]
        value = f"{lval} {infix} {rval}"
        if not guards:
            return f"({value})"
        return f"({value} if {' and '.join(guards)} else None)"

    def referenced_columns(self):
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class And(Expr):
    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Expr]) -> None:
        # Flatten nested ANDs so the optimizer sees one conjunct list.
        flat: list[Expr] = []
        for part in parts:
            if isinstance(part, And):
                flat.extend(part.parts)
            else:
                flat.append(part)
        self.parts = flat

    def bind(self, schema: Schema) -> Bound:
        bound = [p.bind(schema) for p in self.parts]

        def run(row: tuple) -> bool:
            return all(f(row) for f in bound)

        return run

    def emit(self, ctx: _Emitter) -> str:
        # bind() evaluates via all() and returns a bool; keep that.
        return f"bool{self.emit_truth(ctx)}"

    def emit_truth(self, ctx: _Emitter) -> str:
        if not self.parts:
            return "(True)"
        return "(" + " and ".join(p.emit_truth(ctx) for p in self.parts) + ")"

    def referenced_columns(self):
        out: set = set()
        for part in self.parts:
            out |= part.referenced_columns()
        return out

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(p) for p in self.parts) + ")"


class Or(Expr):
    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Expr]) -> None:
        flat: list[Expr] = []
        for part in parts:
            if isinstance(part, Or):
                flat.extend(part.parts)
            else:
                flat.append(part)
        self.parts = flat

    def bind(self, schema: Schema) -> Bound:
        bound = [p.bind(schema) for p in self.parts]

        def run(row: tuple) -> bool:
            return any(f(row) for f in bound)

        return run

    def emit(self, ctx: _Emitter) -> str:
        return f"bool{self.emit_truth(ctx)}"

    def emit_truth(self, ctx: _Emitter) -> str:
        if not self.parts:
            return "(False)"
        return "(" + " or ".join(p.emit_truth(ctx) for p in self.parts) + ")"

    def referenced_columns(self):
        out: set = set()
        for part in self.parts:
            out |= part.referenced_columns()
        return out

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(p) for p in self.parts) + ")"


class Not(Expr):
    __slots__ = ("inner",)

    def __init__(self, inner: Expr) -> None:
        self.inner = inner

    def bind(self, schema: Schema) -> Bound:
        f = self.inner.bind(schema)
        return lambda row: not f(row)

    def emit(self, ctx: _Emitter) -> str:
        return f"(not {self.inner.emit_truth(ctx)})"

    def referenced_columns(self):
        return self.inner.referenced_columns()

    def __repr__(self) -> str:
        return f"NOT {self.inner!r}"


class IsNull(Expr):
    """SQL ``expr IS NULL`` — needed by Listing 1's outer-join filter."""

    __slots__ = ("inner",)

    def __init__(self, inner: Expr) -> None:
        self.inner = inner

    def bind(self, schema: Schema) -> Bound:
        f = self.inner.bind(schema)
        return lambda row: f(row) is None

    def emit(self, ctx: _Emitter) -> str:
        return f"({self.inner.emit(ctx)} is None)"

    def referenced_columns(self):
        return self.inner.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.inner!r} IS NULL)"


class InSet(Expr):
    """``expr IN (v1, v2, ...)`` against a constant set."""

    __slots__ = ("inner", "values")

    def __init__(self, inner: Expr, values: frozenset) -> None:
        self.inner = inner
        self.values = values

    def bind(self, schema: Schema) -> Bound:
        f, values = self.inner.bind(schema), self.values
        return lambda row: f(row) in values

    def emit(self, ctx: _Emitter) -> str:
        return f"({self.inner.emit(ctx)} in {ctx.const(self.values)})"

    def referenced_columns(self):
        return self.inner.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.inner!r} IN {sorted(self.values, key=repr)})"


class Func(Expr):
    """Escape hatch: arbitrary Python function over named column values.

    Kept for application-specific consistency rules that go beyond the
    comparison/arithmetic core (Section 2's "application specific
    consistency models").
    """

    __slots__ = ("fn", "columns", "label")

    def __init__(self, fn: Callable[..., Any], columns: Sequence[str], label: str = "") -> None:
        self.fn = fn
        self.columns = [ColumnRef(c) for c in columns]
        self.label = label or getattr(fn, "__name__", "func")

    def bind(self, schema: Schema) -> Bound:
        getters = [c.bind(schema) for c in self.columns]
        fn = self.fn
        return lambda row: fn(*[g(row) for g in getters])

    def emit(self, ctx: _Emitter) -> str:
        name = ctx.fresh("f")
        ctx.env[name] = self.fn
        args = ", ".join(c.emit(ctx) for c in self.columns)
        return f"{name}({args})"

    def referenced_columns(self):
        out: set = set()
        for c in self.columns:
            out |= c.referenced_columns()
        return out

    def __repr__(self) -> str:
        return f"{self.label}({', '.join(repr(c) for c in self.columns)})"


# -- public constructors -------------------------------------------------


def col(name: str, qualifier: Optional[str] = None) -> ColumnRef:
    """Column reference; accepts ``"name"`` or ``"alias.name"``."""
    return ColumnRef(name, qualifier)


def lit(value: Any) -> Literal:
    """Literal constant."""
    return Literal(value)


def and_(*parts: Expr) -> Expr:
    """N-ary conjunction (empty conjunction is TRUE)."""
    if not parts:
        return Literal(True)
    if len(parts) == 1:
        return parts[0]
    return And(list(parts))


def or_(*parts: Expr) -> Expr:
    """N-ary disjunction (empty disjunction is FALSE)."""
    if not parts:
        return Literal(False)
    if len(parts) == 1:
        return parts[0]
    return Or(list(parts))


def not_(part: Expr) -> Expr:
    return Not(part)


def is_null(part: Expr) -> Expr:
    return IsNull(part)


def func(fn: Callable[..., Any], *columns: str, label: str = "") -> Func:
    return Func(fn, columns, label=label)


def split_conjuncts(expr: Expr) -> list[Expr]:
    """Flatten an expression into its top-level AND-ed conjuncts."""
    if isinstance(expr, And):
        return list(expr.parts)
    return [expr]


# -- compilation ---------------------------------------------------------


def compile_expr(expr: Expr, schema: Schema, predicate: bool = False) -> Bound:
    """Compile *expr* against *schema* into a single Python function.

    The expression tree is rendered once to source (column references
    become tuple indexing, constants are inlined or hoisted) and then
    ``compile()``d — per-row evaluation is one call with no tree walk,
    which is what the plan compiler uses in `select`/join inner loops.

    With ``predicate=True`` only the result's truthiness is promised
    (AND/OR skip their bool() normalization).  Nodes with no source form
    (exotic subclasses) fall back to the interpreted :meth:`Expr.bind`,
    so compilation never changes semantics, only speed.  The generated
    source is attached as ``fn.__relalg_source__`` for EXPLAIN output.
    """
    ctx = _Emitter(schema)
    try:
        fragment = expr.emit_truth(ctx) if predicate else expr.emit(ctx)
    except _CannotCompile:
        return expr.bind(schema)
    source = f"def _compiled(_row):\n    return {fragment}\n"
    namespace = dict(ctx.env)
    exec(compile(source, "<relalg:compiled-expr>", "exec"), namespace)
    fn = namespace["_compiled"]
    fn.__relalg_source__ = source
    return fn
