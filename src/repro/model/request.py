"""Request and transaction primitives (the paper's Table 2 data model).

The paper stores pending and historical requests in relations with the
attributes::

    ID        Consecutive request number
    TA        Transaction number
    INTRATA   Request number within a transaction
    Operation Operation type (read/write/abort/commit)
    Object    Object number

:class:`Request` carries exactly these five attributes plus an optional
:class:`RequestAttributes` side-car for middleware concerns the paper
motivates but does not put in Table 2 (client identity, SLA class,
deadline, arrival timestamp).  Keeping the side-car separate keeps the
core row faithful to the paper while letting SLA protocols (Section 1,
constraint (2)) order requests on richer attributes.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Optional, Sequence


class Operation(enum.Enum):
    """Operation type of a request, encoded as in the paper's SQL.

    The paper's Listing 1 compares the ``operation`` column against the
    single-letter codes ``'r'``, ``'w'``, ``'a'`` and ``'c'``; we keep the
    same codes as enum values so relational/SQL backends can use them
    verbatim.
    """

    READ = "r"
    WRITE = "w"
    ABORT = "a"
    COMMIT = "c"

    @property
    def is_data_access(self) -> bool:
        """True for read/write, False for the termination operations."""
        return self in (Operation.READ, Operation.WRITE)

    @property
    def is_termination(self) -> bool:
        """True for commit/abort."""
        return self in (Operation.COMMIT, Operation.ABORT)

    @classmethod
    def from_code(cls, code: str) -> "Operation":
        """Parse a single-letter operation code (``r``/``w``/``a``/``c``)."""
        try:
            return cls(code.lower())
        except ValueError:
            raise ValueError(f"unknown operation code: {code!r}") from None


class TransactionStatus(enum.Enum):
    """Lifecycle state of a transaction as seen by a scheduler."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


#: Object number used for termination requests, which touch no data object.
#: The paper's schema still has an Object column for them; we use -1 as the
#: conventional "no object" marker so rows stay fixed-width integers.
NO_OBJECT = -1


@dataclass(frozen=True, slots=True)
class RequestAttributes:
    """Optional middleware attributes attached to a request.

    These model the paper's constraint class (2): service-level agreements
    such as "premium vs. free customers" (Section 1), plus bookkeeping the
    middleware needs (who to send the result to, when the request arrived).
    """

    client_id: int = 0
    sla_class: str = "standard"
    priority: int = 0
    deadline: Optional[float] = None
    arrival_time: float = 0.0


@dataclass(frozen=True, slots=True)
class Request:
    """One schedulable request — a row of the paper's ``requests`` table.

    Attributes mirror the paper's Table 2 exactly; ``attrs`` is the
    optional SLA/bookkeeping side-car (not part of the paper's schema).
    """

    id: int
    ta: int
    intrata: int
    operation: Operation
    obj: int = NO_OBJECT
    attrs: RequestAttributes = field(default=RequestAttributes(), compare=False)

    def __post_init__(self) -> None:
        if self.operation.is_data_access and self.obj < 0:
            raise ValueError(
                f"data access {self.operation.name} requires a non-negative "
                f"object number, got {self.obj}"
            )

    @property
    def is_read(self) -> bool:
        return self.operation is Operation.READ

    @property
    def is_write(self) -> bool:
        return self.operation is Operation.WRITE

    @property
    def is_commit(self) -> bool:
        return self.operation is Operation.COMMIT

    @property
    def is_abort(self) -> bool:
        return self.operation is Operation.ABORT

    def conflicts_with(self, other: "Request") -> bool:
        """Classical conflict test: same object, different transaction,
        at least one write.  Termination requests never conflict."""
        if not (self.operation.is_data_access and other.operation.is_data_access):
            return False
        if self.ta == other.ta or self.obj != other.obj:
            return False
        return self.is_write or other.is_write

    def with_attrs(self, **changes) -> "Request":
        """Return a copy with updated side-car attributes."""
        return replace(self, attrs=replace(self.attrs, **changes))

    def as_row(self) -> tuple:
        """Project onto the paper's Table 2 columns (ID, TA, INTRATA,
        Operation, Object) — the shape stored in the relational engine."""
        return (self.id, self.ta, self.intrata, self.operation.value, self.obj)

    @classmethod
    def from_row(cls, row: Sequence) -> "Request":
        """Inverse of :meth:`as_row` (extra columns are ignored)."""
        rid, ta, intrata, op, obj = row[:5]
        return cls(
            id=int(rid),
            ta=int(ta),
            intrata=int(intrata),
            operation=Operation.from_code(str(op)),
            obj=int(obj),
        )

    def __str__(self) -> str:  # e.g. "r3[17]" / "c3"
        code = self.operation.value
        if self.operation.is_data_access:
            return f"{code}{self.ta}[{self.obj}]"
        return f"{code}{self.ta}"


@dataclass(slots=True)
class Transaction:
    """An ordered bundle of requests sharing a transaction number.

    A transaction is *well-formed* when its INTRATA numbers are the
    consecutive sequence 0..n-1 and at most one termination request exists,
    positioned last.
    """

    ta: int
    requests: list[Request] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def data_accesses(self) -> list[Request]:
        return [r for r in self.requests if r.operation.is_data_access]

    @property
    def objects(self) -> set[int]:
        """Set of object numbers touched by the transaction's data accesses."""
        return {r.obj for r in self.data_accesses}

    @property
    def write_set(self) -> set[int]:
        return {r.obj for r in self.requests if r.is_write}

    @property
    def read_set(self) -> set[int]:
        return {r.obj for r in self.requests if r.is_read}

    @property
    def termination(self) -> Optional[Request]:
        """The commit/abort request, if present."""
        for request in self.requests:
            if request.operation.is_termination:
                return request
        return None

    def is_well_formed(self) -> bool:
        intratas = [r.intrata for r in self.requests]
        if intratas != list(range(len(self.requests))):
            return False
        terminations = [r for r in self.requests if r.operation.is_termination]
        if len(terminations) > 1:
            return False
        if terminations and self.requests[-1] is not terminations[0]:
            return False
        return all(r.ta == self.ta for r in self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __len__(self) -> int:
        return len(self.requests)


class _RequestIdAllocator:
    """Process-wide allocator for the consecutive ``ID`` column.

    The paper's ID attribute is a "consecutive request number"; workload
    generators normally manage their own counters, but ad-hoc construction
    (tests, examples) can lean on this shared allocator.
    """

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def next_id(self) -> int:
        return next(self._counter)

    def reset(self) -> None:
        self._counter = itertools.count(1)


GLOBAL_REQUEST_IDS = _RequestIdAllocator()


def make_transaction(
    ta: int,
    accesses: Iterable[tuple[str, int]],
    terminate: str = "c",
    start_id: Optional[int] = None,
    attrs: Optional[RequestAttributes] = None,
) -> Transaction:
    """Build a well-formed transaction from ``(op_code, object)`` pairs.

    Parameters
    ----------
    ta:
        Transaction number.
    accesses:
        Iterable of ``("r"|"w", object_number)`` pairs, in program order.
    terminate:
        ``"c"`` to commit (default), ``"a"`` to abort, ``""`` for an
        open transaction with no termination request.
    start_id:
        First ID to assign; defaults to drawing from the global allocator.
    attrs:
        Optional side-car attributes applied to every request.

    Examples
    --------
    >>> txn = make_transaction(7, [("r", 10), ("w", 10)], start_id=1)
    >>> [str(r) for r in txn]
    ['r7[10]', 'w7[10]', 'c7']
    """
    side_car = attrs if attrs is not None else RequestAttributes()
    requests: list[Request] = []
    counter = (
        itertools.count(start_id)
        if start_id is not None
        else iter(GLOBAL_REQUEST_IDS.next_id, None)
    )
    intrata = 0
    for code, obj in accesses:
        requests.append(
            Request(
                id=next(counter),
                ta=ta,
                intrata=intrata,
                operation=Operation.from_code(code),
                obj=obj,
                attrs=side_car,
            )
        )
        intrata += 1
    if terminate:
        requests.append(
            Request(
                id=next(counter),
                ta=ta,
                intrata=intrata,
                operation=Operation.from_code(terminate),
                obj=NO_OBJECT,
                attrs=side_car,
            )
        )
    return Transaction(ta=ta, requests=requests)
