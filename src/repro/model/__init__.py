"""Request/transaction data model and schedule-correctness tooling.

The paper's central move is to treat scheduling requests as *regular data*
(Section 3.1): every request is a row with the attributes of the paper's
Table 2 (``ID``, ``TA``, ``INTRATA``, ``Operation``, ``Object``).  This
package defines that row type (:class:`~repro.model.request.Request`),
transaction containers, and the classical correctness machinery used both
by the protocol implementations and by the test suite to *verify* that
produced schedules are serializable, strict, recoverable etc.
"""

from repro.model.request import (
    Operation,
    Request,
    RequestAttributes,
    Transaction,
    TransactionStatus,
    make_transaction,
)
from repro.model.schedule import (
    Schedule,
    conflict_graph,
    conflicts,
    is_conflict_serializable,
    is_recoverable,
    is_avoiding_cascading_aborts,
    is_strict,
    is_legal_ss2pl_order,
    serialization_order,
)
from repro.model.history import HistoryView

__all__ = [
    "Operation",
    "Request",
    "RequestAttributes",
    "Transaction",
    "TransactionStatus",
    "make_transaction",
    "Schedule",
    "conflicts",
    "conflict_graph",
    "is_conflict_serializable",
    "is_recoverable",
    "is_avoiding_cascading_aborts",
    "is_strict",
    "is_legal_ss2pl_order",
    "serialization_order",
    "HistoryView",
]
