"""Schedules and classical correctness criteria.

The scheduler's contract (paper Section 1, constraint (1)) is that the
order in which it releases requests to the server satisfies a correctness
criterion — classically *conflict serializability*, and for SS2PL also
*strictness*.  This module provides an executable version of those
textbook definitions (Weikum & Vossen, the paper's reference [23]) so the
test suite can verify every schedule our schedulers emit.

A :class:`Schedule` is simply an ordered sequence of
:class:`~repro.model.request.Request` objects — the *output* order of a
scheduler, i.e. the order requests are submitted to the server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

import networkx as nx

from repro.model.request import Operation, Request


def conflicts(a: Request, b: Request) -> bool:
    """True iff requests *a* and *b* conflict (same object, different
    transactions, at least one write)."""
    return a.conflicts_with(b)


@dataclass
class Schedule:
    """An ordered sequence of requests, with transaction-level views.

    The class is intentionally a thin, append-only container: schedulers
    append requests as they release them, and the analysis functions below
    interpret the sequence.
    """

    requests: list[Request] = field(default_factory=list)

    def append(self, request: Request) -> None:
        self.requests.append(request)

    def extend(self, batch: Iterable[Request]) -> None:
        self.requests.extend(batch)

    @property
    def transactions(self) -> list[int]:
        """Transaction numbers in order of first appearance."""
        seen: dict[int, None] = {}
        for request in self.requests:
            seen.setdefault(request.ta, None)
        return list(seen)

    @property
    def committed(self) -> set[int]:
        return {r.ta for r in self.requests if r.is_commit}

    @property
    def aborted(self) -> set[int]:
        return {r.ta for r in self.requests if r.is_abort}

    @property
    def active(self) -> set[int]:
        terminated = self.committed | self.aborted
        return {r.ta for r in self.requests if r.ta not in terminated}

    def committed_projection(self) -> "Schedule":
        """The sub-schedule containing only requests of committed
        transactions — the object of the serializability definitions."""
        committed = self.committed
        return Schedule([r for r in self.requests if r.ta in committed])

    def of_transaction(self, ta: int) -> list[Request]:
        return [r for r in self.requests if r.ta == ta]

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __len__(self) -> int:
        return len(self.requests)

    def __str__(self) -> str:
        return " ".join(str(r) for r in self.requests)


def conflict_graph(schedule: Schedule) -> nx.DiGraph:
    """Conflict (serialization) graph of the committed projection.

    Nodes are transaction numbers; an edge ``ti -> tj`` exists when some
    request of ``ti`` precedes and conflicts with a request of ``tj``.
    """
    committed = schedule.committed_projection()
    graph = nx.DiGraph()
    graph.add_nodes_from(committed.transactions)
    data_accesses = [r for r in committed if r.operation.is_data_access]
    # Group by object so we only compare requests that can possibly conflict.
    by_object: dict[int, list[Request]] = {}
    for request in data_accesses:
        by_object.setdefault(request.obj, []).append(request)
    for accesses in by_object.values():
        for i, earlier in enumerate(accesses):
            for later in accesses[i + 1 :]:
                if earlier.conflicts_with(later):
                    graph.add_edge(earlier.ta, later.ta)
    return graph


def is_conflict_serializable(schedule: Schedule) -> bool:
    """Conflict-serializability (CSR) test: the conflict graph is acyclic."""
    return nx.is_directed_acyclic_graph(conflict_graph(schedule))


def serialization_order(schedule: Schedule) -> Optional[list[int]]:
    """A topological order of the conflict graph (an equivalent serial
    schedule), or None when the schedule is not conflict-serializable."""
    graph = conflict_graph(schedule)
    if not nx.is_directed_acyclic_graph(graph):
        return None
    return list(nx.topological_sort(graph))


def _termination_index(schedule: Schedule) -> dict[int, int]:
    """Map ta -> position of its commit/abort request (if any)."""
    positions: dict[int, int] = {}
    for index, request in enumerate(schedule):
        if request.operation.is_termination:
            positions[request.ta] = index
    return positions


def _reads_from_pairs(schedule: Schedule) -> list[tuple[int, int, int, int]]:
    """All (reader_pos, reader_ta, writer_ta, obj) where the reader reads
    *obj* from the writer (the last preceding writer of obj in another
    transaction, with no abort of the writer in between)."""
    pairs: list[tuple[int, int, int, int]] = []
    last_writer: dict[int, tuple[int, int]] = {}  # obj -> (writer_ta, pos)
    aborted_before: dict[int, set[int]] = {}
    aborted: set[int] = set()
    for pos, request in enumerate(schedule):
        if request.is_abort:
            aborted.add(request.ta)
        elif request.is_write:
            last_writer[request.obj] = (request.ta, pos)
        elif request.is_read:
            writer = last_writer.get(request.obj)
            if writer is not None and writer[0] != request.ta:
                if writer[0] not in aborted:
                    pairs.append((pos, request.ta, writer[0], request.obj))
        aborted_before[pos] = set(aborted)
    return pairs


def is_recoverable(schedule: Schedule) -> bool:
    """Recoverability (RC): whenever tj reads from ti and commits, ti
    committed before tj's commit."""
    terminations = _termination_index(schedule)
    commits = {r.ta: pos for pos, r in enumerate(schedule) if r.is_commit}
    for __, reader, writer, __obj in _reads_from_pairs(schedule):
        reader_commit = commits.get(reader)
        if reader_commit is None:
            continue
        writer_commit = commits.get(writer)
        if writer_commit is None or writer_commit > reader_commit:
            return False
    # Reading from a later-aborted transaction and committing also
    # violates recoverability.
    aborts = {r.ta: pos for pos, r in enumerate(schedule) if r.is_abort}
    for read_pos, reader, writer, __obj in _reads_from_pairs(schedule):
        reader_commit = commits.get(reader)
        writer_abort = aborts.get(writer)
        if reader_commit is not None and writer_abort is not None:
            return False
    del terminations
    return True


def is_avoiding_cascading_aborts(schedule: Schedule) -> bool:
    """ACA: transactions read only from committed transactions."""
    commits = {r.ta: pos for pos, r in enumerate(schedule) if r.is_commit}
    for read_pos, __reader, writer, __obj in _reads_from_pairs(schedule):
        writer_commit = commits.get(writer)
        if writer_commit is None or writer_commit > read_pos:
            return False
    return True


def is_strict(schedule: Schedule) -> bool:
    """Strictness (ST): no read *or overwrite* of an object written by a
    transaction that has not yet terminated."""
    termination_pos = _termination_index(schedule)
    writes: dict[int, list[tuple[int, int]]] = {}  # obj -> [(pos, ta)]
    for pos, request in enumerate(schedule):
        if not request.operation.is_data_access:
            continue
        for write_pos, writer in writes.get(request.obj, ()):
            if writer == request.ta:
                continue
            term = termination_pos.get(writer)
            if term is None or term > pos:
                return False
        if request.is_write:
            writes.setdefault(request.obj, []).append((pos, request.ta))
    return True


def is_legal_ss2pl_order(schedule: Schedule) -> bool:
    """Check that a schedule could have been produced under SS2PL.

    Under strong strict 2PL every lock is held until the owning
    transaction terminates.  Operationally this means: once transaction
    *ti* accessed object *x*, no conflicting access by *tj* may appear
    before *ti*'s commit/abort.  (This is the invariant the paper's
    Listing 1 enforces set-at-a-time.)
    """
    termination_pos = _termination_index(schedule)
    accesses: dict[int, list[tuple[int, Request]]] = {}
    for pos, request in enumerate(schedule):
        if not request.operation.is_data_access:
            continue
        for earlier_pos, earlier in accesses.get(request.obj, ()):
            if earlier.conflicts_with(request):
                term = termination_pos.get(earlier.ta)
                if term is None or term > pos:
                    return False
        accesses.setdefault(request.obj, []).append((pos, request))
    return True


def interleave(schedules: Sequence[Sequence[Request]], pattern: Sequence[int]) -> Schedule:
    """Build a schedule by interleaving per-transaction sequences.

    ``pattern`` lists indices into ``schedules``; each occurrence consumes
    the next request of that transaction.  Useful for constructing precise
    textbook interleavings in tests.

    >>> from repro.model.request import make_transaction
    >>> t1 = make_transaction(1, [("r", 1)], start_id=1)
    >>> t2 = make_transaction(2, [("w", 1)], start_id=10)
    >>> str(interleave([t1.requests, t2.requests], [0, 1, 0, 1]))
    'r1[1] w2[1] c1 c2'
    """
    cursors = [0] * len(schedules)
    out = Schedule()
    for which in pattern:
        out.append(schedules[which][cursors[which]])
        cursors[which] += 1
    return out
