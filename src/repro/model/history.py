"""Read-only analytical view over an executed-request history.

The paper's architecture keeps a *history database* of "all relevant prior
executed requests" from which "all necessary information about the current
database state etc. can be obtained" (Section 3.3).  :class:`HistoryView`
is the in-memory, object-level counterpart used by imperative baselines
and by tests; the declarative schedulers consult the same information
through queries on the relational store instead.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.model.request import Operation, Request, TransactionStatus


class HistoryView:
    """Incrementally-maintained summary of an executed-request sequence.

    Tracks, per transaction, its status and lock footprint (read/write
    sets), mirroring exactly the information the paper's Listing 1 derives
    with its ``RLockedObjects`` / ``WLockedObjects`` CTEs.
    """

    def __init__(self, requests: Iterable[Request] = ()) -> None:
        self._requests: list[Request] = []
        self._status: dict[int, TransactionStatus] = {}
        self._read_sets: dict[int, set[int]] = {}
        self._write_sets: dict[int, set[int]] = {}
        for request in requests:
            self.record(request)

    def record(self, request: Request) -> None:
        """Append one executed request and update the summaries."""
        self._requests.append(request)
        ta = request.ta
        self._status.setdefault(ta, TransactionStatus.ACTIVE)
        if request.operation is Operation.READ:
            self._read_sets.setdefault(ta, set()).add(request.obj)
        elif request.operation is Operation.WRITE:
            self._write_sets.setdefault(ta, set()).add(request.obj)
        elif request.operation is Operation.COMMIT:
            self._status[ta] = TransactionStatus.COMMITTED
        elif request.operation is Operation.ABORT:
            self._status[ta] = TransactionStatus.ABORTED

    def record_batch(self, batch: Iterable[Request]) -> None:
        for request in batch:
            self.record(request)

    # -- per-transaction facts -------------------------------------------------

    def status(self, ta: int) -> TransactionStatus:
        return self._status.get(ta, TransactionStatus.ACTIVE)

    def is_active(self, ta: int) -> bool:
        return self.status(ta) is TransactionStatus.ACTIVE

    def is_finished(self, ta: int) -> bool:
        return self.status(ta) in (
            TransactionStatus.COMMITTED,
            TransactionStatus.ABORTED,
        )

    def read_set(self, ta: int) -> frozenset[int]:
        return frozenset(self._read_sets.get(ta, ()))

    def write_set(self, ta: int) -> frozenset[int]:
        return frozenset(self._write_sets.get(ta, ()))

    # -- lock-footprint views (matching Listing 1's CTEs) ----------------------

    @property
    def active_transactions(self) -> set[int]:
        return {
            ta
            for ta, status in self._status.items()
            if status is TransactionStatus.ACTIVE
        }

    def write_locked_objects(self) -> dict[int, set[int]]:
        """obj -> set of *active* transactions holding a write lock.

        Matches the paper's ``WLockedObjects`` CTE: writes of transactions
        with no commit/abort in the history.
        """
        locked: dict[int, set[int]] = {}
        for ta in self.active_transactions:
            for obj in self._write_sets.get(ta, ()):
                locked.setdefault(obj, set()).add(ta)
        return locked

    def read_locked_objects(self) -> dict[int, set[int]]:
        """obj -> set of *active* transactions holding a pure read lock.

        Matches ``RLockedObjects``: reads by active transactions that did
        not also write the object (a write subsumes/upgrades the lock).
        """
        locked: dict[int, set[int]] = {}
        for ta in self.active_transactions:
            writes = self._write_sets.get(ta, set())
            for obj in self._read_sets.get(ta, ()):
                if obj not in writes:
                    locked.setdefault(obj, set()).add(ta)
        return locked

    def would_conflict(self, request: Request) -> bool:
        """Would executing *request* now conflict with a held lock?

        This is the single-request imperative equivalent of what Listing 1
        computes for the whole pending set at once.
        """
        if not request.operation.is_data_access:
            return False
        write_holders = {
            ta
            for ta in self.active_transactions
            if request.obj in self._write_sets.get(ta, set())
        }
        if write_holders - {request.ta}:
            return True
        if request.operation is Operation.WRITE:
            read_holders = {
                ta
                for ta in self.active_transactions
                if request.obj in self._read_sets.get(ta, set())
            }
            if read_holders - {request.ta}:
                return True
        return False

    # -- pruning ---------------------------------------------------------------

    def prune_finished(self) -> int:
        """Drop requests of finished transactions; return how many rows
        were removed.  The paper keeps only "relevant" prior requests in
        the history database — under SS2PL, requests of committed/aborted
        transactions hold no locks and are irrelevant to scheduling."""
        finished = {
            ta
            for ta, status in self._status.items()
            if status is not TransactionStatus.ACTIVE
        }
        before = len(self._requests)
        self._requests = [r for r in self._requests if r.ta not in finished]
        for ta in finished:
            self._status.pop(ta, None)
            self._read_sets.pop(ta, None)
            self._write_sets.pop(ta, None)
        return before - len(self._requests)

    # -- container protocol ----------------------------------------------------

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __len__(self) -> int:
        return len(self._requests)
