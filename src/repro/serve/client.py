"""Pooled workload driver for the serving layer.

:func:`drive_workload` is the open-traffic counterpart of the closed-
loop simulation drivers: it pre-generates a seeded list of transaction
profiles (same :class:`~repro.workload.generator.TransactionFactory`
machinery the simulator uses, so the *content* of the workload is fully
determined by ``(spec, seed)``), then replays them through a
:class:`~repro.serve.session.SessionPool` with ``sessions`` concurrent
clients, each pipelining a whole transaction's statements before
awaiting the grants in program order.

Wall-clock interleaving across sessions is inherently nondeterministic;
what the seed pins is every transaction's statement sequence, which is
what invariant checking and benchmark comparability need.

``crash_indices`` injects client crashes (the PR 4 crash-storm shape,
ported to sessions): the session executing one of those transaction
indices crashes after its first grant — mid-transaction, locks held —
and a fresh session takes over the remaining work.  The scheduler's
recovery policy must reap the orphaned transaction; the driver counts
the crash and moves on.
"""

from __future__ import annotations

__all__ = ["DriveReport", "drive_workload", "generate_profiles"]

import asyncio
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.model.request import NO_OBJECT, Operation
from repro.serve.service import SchedulerService
from repro.serve.session import ServiceClosed, TicketRejected
from repro.workload.generator import StatementProfile, TransactionFactory
from repro.workload.spec import WorkloadSpec


@dataclass
class DriveReport:
    """What the driver observed (service-side telemetry lives in
    :meth:`~repro.serve.service.SchedulerService.stats`)."""

    transactions: int = 0
    committed: int = 0
    aborted: int = 0
    crashes: int = 0
    requests_submitted: int = 0
    requests_granted: int = 0
    requests_rejected: int = 0
    reject_reasons: dict[str, int] = field(default_factory=dict)

    def merge_rejection(self, reason: str) -> None:
        self.requests_rejected += 1
        self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1


def generate_profiles(
    spec: WorkloadSpec, seed: int, transactions: int
) -> list[list[StatementProfile]]:
    """The seeded workload: ``transactions`` statement sequences, fully
    determined by ``(spec, seed)``."""
    factory = TransactionFactory(spec, random.Random(seed))
    return [factory.next_profile() for __ in range(transactions)]


async def drive_workload(
    service: SchedulerService,
    spec: WorkloadSpec,
    *,
    transactions: int,
    sessions: int = 8,
    seed: int = 17,
    crash_indices: Optional[set[int]] = None,
) -> DriveReport:
    """Replay a seeded workload through the service's session pool.

    ``sessions`` concurrent clients pull transactions from the shared
    seeded list; each submits a transaction's statements back-to-back
    (bounded by the session's pipeline), awaits the grants in program
    order, releases them, then commits.  A recovery rejection (timeout
    / shed / orphan) aborts the transaction client-side: remaining
    grants are collected and the transaction is counted ``aborted``.
    """
    if transactions <= 0:
        raise ValueError("transactions must be positive")
    if sessions <= 0:
        raise ValueError("sessions must be positive")
    profiles = generate_profiles(spec, seed, transactions)
    crash_at = crash_indices or set()
    queue: asyncio.Queue = asyncio.Queue()
    for index, profile in enumerate(profiles):
        queue.put_nowait((index, profile))
    report = DriveReport(transactions=transactions)

    async def worker() -> None:
        while True:
            try:
                index, profile = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            session = await service.pool.acquire()
            try:
                await _run_transaction(
                    service,
                    session,
                    profile,
                    report,
                    crash=index in crash_at,
                )
            except ServiceClosed:
                return
            finally:
                if session.is_open:
                    await session.close()

    await asyncio.gather(*(worker() for __ in range(sessions)))
    return report


async def _run_transaction(
    service: SchedulerService,
    session,
    profile: list[StatementProfile],
    report: DriveReport,
    crash: bool = False,
) -> None:
    session.begin()
    tickets: list = []
    collected = 0
    aborted = False
    crashed = False

    async def collect_oldest() -> None:
        # Await (in program order) the oldest ticket not yet collected
        # and release its grant.  A recovery rejection marks the whole
        # transaction aborted — the remaining tickets of the aborted ta
        # fail fast, so draining them cannot hang.
        nonlocal collected, aborted, crashed
        position = collected
        ticket = tickets[position]
        collected += 1
        try:
            await service.await_grant(ticket)
        except TicketRejected as rejection:
            report.merge_rejection(rejection.reason)
            aborted = True
            return
        report.requests_granted += 1
        service.release(ticket)
        if crash and position == 0:
            # Mid-transaction client death: grants held, commit
            # never sent — the orphan-reaping path's test vector.
            await session.crash()
            report.crashes += 1
            crashed = True

    for statement in profile:
        # Submitting past the pipeline bound would block on a semaphore
        # only release() frees — with every slot full and every grant
        # uncollected that is a self-deadlock, so collect the oldest
        # grant first whenever the window is full.
        while not aborted and tickets and (
            len(tickets) - collected >= session.max_pipeline
        ):
            await collect_oldest()
            if crashed:
                report.aborted += 1
                return
        if aborted:
            break
        tickets.append(
            await session.request(statement.operation.value, statement.obj)
        )
        report.requests_submitted += 1
    while collected < len(tickets):
        await collect_oldest()
        if crashed:
            report.aborted += 1
            return
    if aborted:
        report.aborted += 1
        return
    commit = await session.request(Operation.COMMIT.value, NO_OBJECT)
    report.requests_submitted += 1
    try:
        await service.await_grant(commit)
    except TicketRejected as rejection:
        report.merge_rejection(rejection.reason)
        report.aborted += 1
        return
    report.requests_granted += 1
    service.release(commit)
    report.committed += 1
