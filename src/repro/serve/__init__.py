"""The asyncio serving layer: scheduler-as-a-service.

ROADMAP item 1 — the gateway from "reproduction" to "service".  The
same :class:`~repro.core.scheduler.DeclarativeScheduler` the simulator
drives with virtual time runs here as a long-lived asyncio task paced
by the trigger policies, behind pooled sessions and a three-call
wire-ish API (``submit`` → ticket, ``await_grant``, ``release``).

Construct services through :func:`repro.api.open_service`; the pieces
live here:

* :class:`SchedulerService` — the pacing loop, grant routing,
  admission backpressure (:mod:`repro.serve.service`).
* :class:`Session` / :class:`SessionPool` / :class:`Ticket` — bounded
  connections with per-session pipelining (:mod:`repro.serve.session`).
* :func:`drive_workload` — the seeded pooled workload driver the CLI,
  benchmarks, and tests share (:mod:`repro.serve.client`).

The service drives any object with the scheduler step surface, so
``repro.api.open_service(..., shards=N)`` serves a
:class:`~repro.shard.scheduler.ShardedScheduler` through the same
pooled sessions with no client-visible difference.
"""

from repro.serve.client import DriveReport, drive_workload, generate_profiles
from repro.serve.service import SchedulerService
from repro.serve.session import (
    ServeError,
    ServiceClosed,
    Session,
    SessionClosed,
    SessionPool,
    Ticket,
    TicketRejected,
    TicketState,
)

__all__ = [
    "DriveReport",
    "SchedulerService",
    "ServeError",
    "ServiceClosed",
    "Session",
    "SessionClosed",
    "SessionPool",
    "Ticket",
    "TicketRejected",
    "TicketState",
    "drive_workload",
    "generate_profiles",
]
