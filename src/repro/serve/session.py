"""Sessions, tickets, and the bounded connection pool.

The wire-ish client surface of the serving layer
(:mod:`repro.serve.service`): a client acquires a :class:`Session`
from the :class:`SessionPool` (bounded — acquisition waits when the
pool is exhausted, exactly like a database connection pool), submits
requests through it (per-session pipelining is bounded by
``max_pipeline``), and gets a :class:`Ticket` back for each request.
The ticket's grant is awaited via
:meth:`~repro.serve.service.SchedulerService.await_grant` and returned
with :meth:`~repro.serve.service.SchedulerService.release`.

A session that dies without closing cleanly (``crash()``, or a client
task that abandons it) reports the crash to the scheduler so the
recovery policy can reap the orphaned transactions, and *always* gives
its pool slot back — a crashed client must never leak capacity.
"""

from __future__ import annotations

__all__ = [
    "ServeError",
    "ServiceClosed",
    "Session",
    "SessionClosed",
    "SessionPool",
    "Ticket",
    "TicketRejected",
    "TicketState",
]

import asyncio
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.model.request import NO_OBJECT, Operation, Request, RequestAttributes

if TYPE_CHECKING:  # pragma: no cover
    from repro.serve.service import SchedulerService


class ServeError(RuntimeError):
    """Base class of serving-layer errors."""


class ServiceClosed(ServeError):
    """The service stopped while the operation was in flight."""


class TicketRejected(ServeError):
    """The request's transaction was aborted before the grant: shed by
    admission control, timed out by the recovery policy, or reaped as
    an orphan.  ``reason`` carries which."""

    def __init__(self, ticket: "Ticket", reason: str) -> None:
        super().__init__(
            f"request {ticket.request.id} (ta {ticket.request.ta}) "
            f"rejected: {reason}"
        )
        self.ticket = ticket
        self.reason = reason


class SessionClosed(ServeError):
    """Submission through a session that was closed or crashed."""


class TicketState(enum.Enum):
    PENDING = "pending"
    GRANTED = "granted"
    REJECTED = "rejected"
    RELEASED = "released"


@dataclass
class Ticket:
    """One submitted request's handle.

    ``future`` resolves to the ticket itself when the scheduler grants
    the request, or fails with :class:`TicketRejected` /
    :class:`ServiceClosed`.  Latency fields are in service-clock
    seconds.
    """

    request: Request
    session_id: int
    submitted_at: float
    future: asyncio.Future = field(repr=False)
    state: TicketState = TicketState.PENDING
    granted_at: Optional[float] = None
    reject_reason: Optional[str] = None
    #: Set when the owning session crashed: nobody will ever await the
    #: future, so resolution cancels it instead of parking an exception.
    abandoned: bool = False
    #: Owning session (None for service-level submits outside any pool).
    session: Optional["Session"] = field(default=None, repr=False)

    @property
    def grant_latency(self) -> Optional[float]:
        """Submit-to-grant seconds (None until granted)."""
        if self.granted_at is None:
            return None
        return self.granted_at - self.submitted_at


class Session:
    """One pooled client connection to the scheduler service.

    Issued by :class:`SessionPool`; ``client_id`` is the identity the
    scheduler's recovery policy tracks (crash reaping keys on it).
    ``submit`` pipelines: up to ``max_pipeline`` tickets may be in
    flight before submission blocks.
    """

    def __init__(
        self,
        service: "SchedulerService",
        pool: "SessionPool",
        client_id: int,
        max_pipeline: int,
        attrs: Optional[RequestAttributes] = None,
    ) -> None:
        self.service = service
        self.pool = pool
        self.client_id = client_id
        self.attrs = attrs if attrs is not None else RequestAttributes(
            client_id=client_id
        )
        self._pipeline = asyncio.Semaphore(max_pipeline)
        self.max_pipeline = max_pipeline
        self._open = True
        self._crashed = False
        self._inflight: dict[int, Ticket] = {}
        self._current_ta: Optional[int] = None

    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    # -- transaction/request construction ---------------------------------

    def begin(self) -> int:
        """Start a transaction: returns a fresh service-wide ta."""
        self._current_ta = self.service.next_ta()
        self._next_intrata = 0
        return self._current_ta

    async def request(self, op_code: str, obj: int = NO_OBJECT) -> Ticket:
        """Build and submit the current transaction's next statement
        (``"r"``/``"w"`` on *obj*, or ``"c"``/``"a"`` to terminate)."""
        if self._current_ta is None:
            self.begin()
        operation = Operation.from_code(op_code)
        request = Request(
            id=self.service.next_request_id(),
            ta=self._current_ta,
            intrata=self._next_intrata,
            operation=operation,
            obj=obj if operation.is_data_access else NO_OBJECT,
            attrs=self.attrs,
        )
        self._next_intrata += 1
        if operation.is_termination:
            self._current_ta = None
        return await self.submit(request)

    async def submit(self, request: Request) -> Ticket:
        """Submit one pre-built request; returns its ticket.

        Applies, in order: session liveness, the per-session pipelining
        bound, then the service's admission backpressure.
        """
        if not self._open:
            raise SessionClosed(
                f"session {self.client_id} is "
                f"{'crashed' if self._crashed else 'closed'}"
            )
        await self._pipeline.acquire()
        try:
            ticket = await self.service.submit(request, session=self)
        except BaseException:
            self._pipeline.release()
            raise
        self._inflight[request.id] = ticket
        return ticket

    def _ticket_done(self, ticket: Ticket) -> None:
        """Service callback: the ticket left the pipeline (granted and
        released, or rejected)."""
        if self._inflight.pop(ticket.request.id, None) is not None:
            self._pipeline.release()

    # -- lifecycle ---------------------------------------------------------

    async def close(self) -> None:
        """Clean disconnect: returns the pool slot.  In-flight tickets
        stay valid — a client may close after collecting its grants."""
        if not self._open:
            return
        self._open = False
        await self.pool._release(self)

    async def crash(self) -> None:
        """Abnormal disconnect: the client dies mid-conversation.

        The scheduler is told (its recovery policy will reap the
        session's orphaned transactions once the lease expires), every
        in-flight ticket is marked abandoned, and the pool slot is
        released — crashed clients never leak capacity.
        """
        if not self._open:
            return
        self._open = False
        self._crashed = True
        for ticket in self._inflight.values():
            ticket.abandoned = True
        self.service.note_client_crashed(self.client_id)
        await self.pool._release(self)


class SessionPool:
    """Bounded pool of :class:`Session` slots over one service.

    ``acquire`` waits when all ``max_sessions`` slots are taken; every
    release (clean close or crash) frees exactly one slot.  Client ids
    are never reused — a session slot is capacity, not identity, so a
    reconnecting client can never be mistaken for its crashed
    predecessor (the scheduler's orphan bookkeeping relies on this).
    """

    def __init__(
        self,
        service: "SchedulerService",
        max_sessions: int,
        max_pipeline: int = 8,
    ) -> None:
        if max_sessions <= 0:
            raise ValueError("max_sessions must be positive")
        if max_pipeline <= 0:
            raise ValueError("max_pipeline must be positive")
        self.service = service
        self.max_sessions = max_sessions
        self.max_pipeline = max_pipeline
        self._slots = asyncio.Semaphore(max_sessions)
        self._next_client_id = 0
        self._active: dict[int, Session] = {}
        self._closed = False

    @property
    def active(self) -> int:
        """Sessions currently holding a slot."""
        return len(self._active)

    @property
    def available(self) -> int:
        """Free slots (0 when acquisition would wait)."""
        return self.max_sessions - len(self._active)

    async def acquire(
        self,
        attrs: Optional[RequestAttributes] = None,
        client_id: Optional[int] = None,
    ) -> Session:
        """Take a slot (waiting if the pool is exhausted) and return a
        fresh session.  ``client_id`` pins the identity (a client
        reconnecting after a crash keeps its id so the scheduler can
        count its retries); by default ids are allocated fresh."""
        if self._closed:
            raise ServiceClosed("session pool is closed")
        await self._slots.acquire()
        if client_id is None:
            client_id = self._next_client_id
            self._next_client_id += 1
        else:
            self._next_client_id = max(self._next_client_id, client_id + 1)
        if attrs is None:
            attrs = RequestAttributes(client_id=client_id)
        session = Session(
            self.service, self, client_id, self.max_pipeline, attrs=attrs
        )
        self._active[id(session)] = session
        return session

    async def _release(self, session: Session) -> None:
        if self._active.pop(id(session), None) is not None:
            self._slots.release()

    def session(self, attrs: Optional[RequestAttributes] = None):
        """``async with pool.session() as s:`` — acquire/close guard."""
        return _SessionContext(self, attrs)

    async def close(self) -> None:
        """Close every active session (clean disconnects)."""
        self._closed = True
        for session in list(self._active.values()):
            await session.close()


class _SessionContext:
    def __init__(self, pool: SessionPool, attrs) -> None:
        self._pool = pool
        self._attrs = attrs
        self._session: Optional[Session] = None

    async def __aenter__(self) -> Session:
        self._session = await self._pool.acquire(self._attrs)
        return self._session

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if self._session is not None:
            await self._session.close()
