"""The asyncio scheduler service: one engine, wall-clock paced.

:class:`SchedulerService` wraps a
:class:`~repro.core.scheduler.DeclarativeScheduler` (or a
:class:`~repro.shard.scheduler.ShardedScheduler` — anything with the
same step surface) in a long-lived asyncio task.  The scheduler itself is untouched — the same synchronous
``submit``/``step`` engine the simulator drives with virtual time — and
the service supplies the two things open traffic needs around it:

* **Pacing.**  The loop waits on a wake event that every ``submit``
  sets, so enqueue-driven triggers (fill level) fire with no polling;
  when the trigger or the recovery policy has a *time* deadline
  (:meth:`~repro.core.scheduler.DeclarativeScheduler.next_recovery_due`,
  ``trigger.next_check``), the wait carries a timeout so timeout aborts
  and orphan reaping happen even when no client is talking.
* **Completion routing.**  A scheduler step hook resolves each granted
  request's :class:`~repro.serve.session.Ticket` future and fails the
  tickets of every transaction the recovery machinery aborted (timeout
  / orphan / shed) with :class:`~repro.serve.session.TicketRejected`.

Backpressure: when the scheduler has an
:class:`~repro.faults.admission.AdmissionPolicy`, ``submit`` *waits*
while the scheduler already holds ``max_pending`` undispatched rows —
the polite, client-visible half of admission control.  The scheduler's
own shed-on-overload stays armed underneath as the hard backstop (e.g.
a drain racing many submitters), so the cap holds either way.

The wire-ish API is three calls: :meth:`submit` returns a ticket,
:meth:`await_grant` blocks until the scheduler dispatches (or rejects)
it, :meth:`release` acknowledges the grant and frees the session's
pipeline slot.  Construction normally goes through
:func:`repro.api.open_service`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

__all__ = ["SchedulerService"]

from repro.core.scheduler import DeclarativeScheduler, SchedulerStepResult
from repro.faults.invariants import InvariantMonitor, lock_model_of
from repro.model.request import Request
from repro.serve.session import (
    ServiceClosed,
    Session,
    SessionPool,
    Ticket,
    TicketRejected,
    TicketState,
)

#: Slack added to timed waits so a wake-up lands strictly *after* the
#: deadline — recovery timeouts use a strict ``now - since > timeout``
#: comparison, so stepping exactly at the deadline would do nothing.
_DEADLINE_SLACK = 1e-4


class SchedulerService:
    """Run a declarative scheduler as an asyncio service.

    Parameters
    ----------
    scheduler:
        The engine to serve.  The service installs its wall clock as
        the scheduler's ``clock`` and appends a step hook; everything
        else about the scheduler is left alone.
    max_sessions, max_pipeline:
        Bounds of the built-in :class:`~repro.serve.session.SessionPool`
        (``service.pool``).
    max_linger:
        Upper bound (seconds) on how long queued work may sit without a
        step when the trigger policy supplies no time deadline of its
        own — the fill-trigger starvation guard.
    check_invariants:
        Attach an :class:`~repro.faults.invariants.InvariantMonitor`
        so every step is checked and :meth:`final_check` can assert
        request-lifecycle totality (no lost requests) at shutdown.
    """

    def __init__(
        self,
        scheduler: DeclarativeScheduler,
        *,
        max_sessions: int = 8,
        max_pipeline: int = 8,
        max_linger: float = 0.05,
        check_invariants: bool = False,
    ) -> None:
        if max_linger <= 0:
            raise ValueError("max_linger must be positive")
        self.scheduler = scheduler
        self.max_linger = max_linger
        self._epoch = time.monotonic()
        scheduler.clock = self.clock
        scheduler.step_hooks.append(self._on_step)
        if check_invariants and scheduler.monitor is None:
            scheduler.monitor = InvariantMonitor(
                lock_model_of(scheduler.protocol)
            )
        self.pool = SessionPool(
            self, max_sessions=max_sessions, max_pipeline=max_pipeline
        )
        self._running = False
        self._task: Optional[asyncio.Task] = None
        #: Set when the pacing loop died with an exception (clients see
        #: :class:`ServiceClosed` chaining to it; ``stop`` re-raises it).
        self.loop_error: Optional[BaseException] = None
        self._wake = asyncio.Event()
        self._capacity = asyncio.Event()
        self._capacity.set()
        #: request id -> unresolved ticket (granted/rejected ones leave).
        self._tickets: dict[int, Ticket] = {}
        #: ta -> {request id -> ticket} for transaction-level rejection.
        self._tickets_by_ta: dict[int, dict[int, Ticket]] = {}
        self._next_ta = 1
        self._next_request_id = 1
        # Service-level telemetry (wall-clock seconds, service epoch).
        self.submitted = 0
        self.granted = 0
        self.released = 0
        self.rejected: dict[str, int] = {"timeout": 0, "orphan": 0, "shed": 0}
        self.grant_latencies: list[float] = []
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None

    # -- clock & ids -------------------------------------------------------

    def clock(self) -> float:
        """Wall-clock seconds since service construction (monotonic)."""
        return time.monotonic() - self._epoch

    def next_ta(self) -> int:
        ta = self._next_ta
        self._next_ta += 1
        return ta

    def next_request_id(self) -> int:
        request_id = self._next_request_id
        self._next_request_id += 1
        return request_id

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "SchedulerService":
        if self._running:
            return self
        self._running = True
        self.started_at = self.clock()
        self._task = asyncio.create_task(self._run_loop(), name="repro-serve")
        self._task.add_done_callback(self._on_loop_done)
        return self

    def _on_loop_done(self, task: asyncio.Task) -> None:
        """The loop died (invariant violation, protocol bug): clients
        must not hang on futures nobody will ever resolve."""
        if task.cancelled():
            return
        error = task.exception()
        if error is None:
            return
        self.loop_error = error
        self._running = False
        self._capacity.set()
        closed = ServiceClosed(f"scheduler loop failed: {error!r}")
        closed.__cause__ = error
        for ticket in list(self._tickets.values()):
            self._resolve_rejection(ticket, closed)
        self._tickets.clear()
        self._tickets_by_ta.clear()

    async def stop(self) -> None:
        """Stop the loop and fail every unresolved ticket with
        :class:`ServiceClosed` (abandoned ones are cancelled)."""
        if not self._running:
            return
        self._running = False
        self.stopped_at = self.clock()
        self._wake.set()
        self._capacity.set()
        if self._task is not None:
            await self._task
            self._task = None
        for ticket in list(self._tickets.values()):
            self._resolve_rejection(ticket, ServiceClosed("service stopped"))
        self._tickets.clear()
        self._tickets_by_ta.clear()
        await self.pool.close()

    async def __aenter__(self) -> "SchedulerService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    @property
    def is_running(self) -> bool:
        return self._running

    # -- the wire-ish API --------------------------------------------------

    async def submit(
        self, request: Request, session: Optional[Session] = None
    ) -> Ticket:
        """Enqueue one request; returns its ticket.

        Blocks while the scheduler is at its admission cap — the
        backpressure path.  The ticket's future resolves on grant and
        fails with :class:`TicketRejected` on timeout/orphan/shed abort.
        """
        while True:
            if not self._running:
                raise ServiceClosed("service is not running")
            if self._has_capacity():
                break
            self._capacity.clear()
            self._wake.set()  # let the loop drain to make room
            await self._capacity.wait()
        now = self.clock()
        ticket = Ticket(
            request=request,
            session_id=session.client_id if session is not None else -1,
            submitted_at=now,
            future=asyncio.get_running_loop().create_future(),
            session=session,
        )
        self._tickets[request.id] = ticket
        self._tickets_by_ta.setdefault(request.ta, {})[request.id] = ticket
        self.scheduler.submit(request, now)
        self.submitted += 1
        self._wake.set()
        return ticket

    async def await_grant(
        self, ticket: Ticket, timeout: Optional[float] = None
    ) -> Ticket:
        """Wait for the scheduler to dispatch the ticket's request.

        Raises :class:`TicketRejected` when recovery aborted the
        transaction first, :class:`ServiceClosed` on shutdown, and
        ``asyncio.TimeoutError`` on a caller-supplied timeout (the
        ticket stays valid — the grant may still arrive later).
        """
        if timeout is None:
            return await ticket.future
        return await asyncio.wait_for(asyncio.shield(ticket.future), timeout)

    def release(self, ticket: Ticket) -> None:
        """Acknowledge a granted ticket: frees its session pipeline slot."""
        if ticket.state is TicketState.GRANTED:
            ticket.state = TicketState.RELEASED
            self.released += 1
        if ticket.session is not None:
            ticket.session._ticket_done(ticket)

    def note_client_crashed(self, client_id: int) -> None:
        """A session died abnormally; the scheduler's recovery policy
        reaps its transactions after the orphan lease."""
        self.scheduler.note_client_crashed(client_id, self.clock())
        self._wake.set()  # re-arm the pacing deadline for the lease

    # -- the pacing loop ---------------------------------------------------

    async def _run_loop(self) -> None:
        scheduler = self.scheduler
        while self._running:
            self._wake.clear()
            now = self.clock()
            if scheduler.should_run(now):
                await self._drain()
                continue
            deadline = self._next_deadline(now)
            if deadline is None and (
                len(scheduler.incoming) or len(scheduler.pending)
            ):
                # A purely enqueue-driven trigger (fill level) below its
                # threshold with no further arrivals would starve the
                # tail of the queue — and any armed recovery timers —
                # forever.  The linger bounds that wait, like a batch
                # linger in any real server.
                deadline = now + self.max_linger
            try:
                if deadline is None:
                    await self._wake.wait()
                else:
                    delay = max(deadline - self.clock(), 0.0) + _DEADLINE_SLACK
                    await asyncio.wait_for(self._wake.wait(), delay)
            except asyncio.TimeoutError:
                # The timed deadline expired.  Step even if the trigger
                # still declines: timed recovery (timeout aborts, orphan
                # leases) only runs inside a step, and a lingered
                # sub-threshold batch must eventually dispatch.
                await self._drain()

    async def _drain(self) -> None:
        """Step, then keep stepping while steps make progress and work
        remains: a recovery abort (orphan reap) can unblock pending
        requests that no future enqueue would ever re-trigger under a
        purely fill-driven trigger."""
        scheduler = self.scheduler
        result = scheduler.step(self.clock())
        while (
            self._running
            and (result.recovery or result.batch_size)
            and (len(scheduler.pending) or len(scheduler.incoming))
        ):
            await asyncio.sleep(0)  # let submitters interleave
            result = scheduler.step(self.clock())

    def _next_deadline(self, now: float) -> Optional[float]:
        """Earliest future time the loop must re-check without a wake:
        the trigger's own clock (when work is queued or blocked) and the
        recovery policy's next timeout/lease expiry."""
        deadline: Optional[float] = None
        if len(self.scheduler.incoming) or len(self.scheduler.pending):
            next_check = self.scheduler.trigger.next_check(now)
            if next_check is not None:
                deadline = next_check
        recovery_due = self.scheduler.next_recovery_due(now)
        if recovery_due is not None:
            deadline = (
                recovery_due if deadline is None else min(deadline, recovery_due)
            )
        return deadline

    def _has_capacity(self) -> bool:
        admission = self.scheduler.admission
        if admission is None:
            return True
        backlog = len(self.scheduler.incoming) + len(self.scheduler.pending)
        return backlog < admission.max_pending

    # -- step hook: ticket resolution --------------------------------------

    def _on_step(self, result: SchedulerStepResult) -> None:
        metrics = self.scheduler.metrics
        for request in result.qualified:
            ticket = self._pop_ticket(request.ta, request.id)
            if ticket is None:
                continue
            ticket.state = TicketState.GRANTED
            ticket.granted_at = result.now
            self.granted += 1
            latency = result.now - ticket.submitted_at
            self.grant_latencies.append(latency)
            if metrics is not None:
                metrics.incr("serve.granted")
                metrics.timer("serve.grant_latency").add(latency)
            if ticket.abandoned:
                ticket.future.cancel()
                # The crashed client will never release(); free the
                # bookkeeping so the session's in-flight map drains.
                if ticket.session is not None:
                    ticket.session._ticket_done(ticket)
            elif not ticket.future.done():
                ticket.future.set_result(ticket)
        for reason, entries in (
            ("timeout", result.recovery.timeouts),
            ("orphan", result.recovery.orphans),
            ("shed", result.recovery.sheds),
        ):
            for ta, _abort in entries:
                self._reject_transaction(ta, reason)
        if self._has_capacity():
            self._capacity.set()

    def _pop_ticket(self, ta: int, request_id: int) -> Optional[Ticket]:
        ticket = self._tickets.pop(request_id, None)
        ta_map = self._tickets_by_ta.get(ta)
        if ta_map is not None:
            ta_map.pop(request_id, None)
            if not ta_map:
                del self._tickets_by_ta[ta]
        return ticket

    def _reject_transaction(self, ta: int, reason: str) -> None:
        """Fail every unresolved ticket of an aborted transaction."""
        ta_map = self._tickets_by_ta.pop(ta, None)
        if not ta_map:
            return
        metrics = self.scheduler.metrics
        for ticket in ta_map.values():
            self._tickets.pop(ticket.request.id, None)
            self.rejected[reason] = self.rejected.get(reason, 0) + 1
            if metrics is not None:
                metrics.incr(f"serve.rejected.{reason}")
            self._resolve_rejection(
                ticket, TicketRejected(ticket, reason), reason=reason
            )

    def _resolve_rejection(
        self, ticket: Ticket, error: Exception, reason: str = "closed"
    ) -> None:
        ticket.state = TicketState.REJECTED
        ticket.reject_reason = reason
        if ticket.abandoned:
            # Nobody will ever await this future; cancelling avoids the
            # event loop's "exception was never retrieved" complaints.
            ticket.future.cancel()
        elif not ticket.future.done():
            ticket.future.set_exception(error)
        if ticket.session is not None:
            ticket.session._ticket_done(ticket)

    # -- end-of-run checking & telemetry -----------------------------------

    def final_check(self) -> Optional[dict]:
        """Run the invariant monitor's request-lifecycle totality check
        (requires ``check_invariants=True``); unresolved tickets are the
        driver-accounted live set.  Returns the state->count summary,
        or None when no monitor is attached."""
        monitor = self.scheduler.monitor
        if monitor is None:
            return None
        live = set(self._tickets)
        live.update(request.id for request in self.scheduler.incoming)
        return monitor.final_check(live, self.clock())

    def stats(self) -> dict:
        """Service-level counters and latency percentiles (seconds)."""
        from repro.metrics.stats import percentile

        duration = (
            (self.stopped_at if self.stopped_at is not None else self.clock())
            - (self.started_at or 0.0)
        )
        latencies = self.grant_latencies
        return {
            "submitted": self.submitted,
            "granted": self.granted,
            "released": self.released,
            "rejected": dict(self.rejected),
            "unresolved": len(self._tickets),
            "steps": self.scheduler.steps_run,
            "duration_s": duration,
            "grants_per_s": (self.granted / duration) if duration > 0 else 0.0,
            "grant_latency_s": {
                "p50": percentile(latencies, 50.0) if latencies else 0.0,
                "p99": percentile(latencies, 99.0) if latencies else 0.0,
                "p99.9": percentile(latencies, 99.9) if latencies else 0.0,
                "max": max(latencies) if latencies else 0.0,
            },
        }
