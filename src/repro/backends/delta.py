"""Compiled-delta backend: incrementally maintained physical plans.

The ``compiled`` backend removed per-step *analysis*; this backend
removes per-step *recomputation*.  A spec's query is lowered once to a
:class:`~repro.relalg.delta.DeltaPlan` — every operator materializes
per-node state and maintains it from the base tables' delta journals —
so each scheduler step costs O(|delta|) instead of O(|history|).

Plans are cached **globally**, keyed by (spec, table pair) in the
single-pass-compile idiom of SQL statement caches: every scheduler,
bench harness, and scenario cell running the same spec against the same
stores shares one maintained plan, and the per-evaluator hit/miss
counters surface cache behaviour in scenario reports.  Entries hold
strong references (ids cannot be recycled underneath the cache) and are
LRU-bounded.

Support is *exact*: :meth:`CompiledDeltaBackend.supports` trial-lowers
the spec against empty Table-2-schema stores and refuses — rather than
silently recomputing — when any operator lacks an incremental lowering
(``LIMIT``, keyless outer joins).  The spec×backend matrix test asserts
declared support equals lowerability, so a delta-lowering gap can never
masquerade as a slow fallback.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.backends.base import (
    BackendError,
    ExecutionBackend,
    SpecEvaluator,
    register_backend,
)
from repro.core.stores import REQUEST_COLUMNS
from repro.model.request import Request
from repro.protocols.base import ProtocolDecision
from repro.protocols.spec import ProtocolSpec
from repro.relalg.delta import DeltaPlan, lower_delta_plan
from repro.relalg.sql import SqlPlanner
from repro.relalg.table import Table


def _spec_builder(spec: ProtocolSpec) -> Callable[[Table, Table], Any]:
    """The spec's relalg builder, or its SQL text planned on demand."""
    if spec.relalg is not None:
        return spec.relalg

    def builder(requests: Table, history: Table):
        planner = SqlPlanner({"requests": requests, "history": history})
        return planner.plan(spec.sql, defer_ctes=True)

    return builder


class DeltaPlanCache:
    """Global (spec, table pair) -> maintained :class:`DeltaPlan`.

    Strong references and LRU eviction, like
    :class:`~repro.relalg.plan.PlanCache`, but process-wide: the plan
    *is* the materialized state, so sharing it across evaluators of the
    same spec and stores shares the maintenance work too (a second
    refresh in the same step sees an empty journal delta and is free).
    """

    def __init__(self, capacity: int = 32) -> None:
        self._capacity = capacity
        self._entries: dict[tuple[int, int, int], tuple] = {}
        self.hits = 0
        self.misses = 0

    def get(
        self,
        spec: ProtocolSpec,
        requests: Table,
        history: Table,
    ) -> tuple[DeltaPlan, bool]:
        """(plan, was_hit); lowers and caches on miss."""
        key = (id(spec), id(requests), id(history))
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._entries[key] = entry  # most recently used
            self.hits += 1
            return entry[3], True
        self.misses += 1
        built = _spec_builder(spec)(requests, history)
        plan = lower_delta_plan(built)
        self._entries[key] = (spec, requests, history, plan)
        while len(self._entries) > self._capacity:
            self._entries.pop(next(iter(self._entries)))
        return plan, False

    def evict_spec(self, spec: ProtocolSpec) -> None:
        for key in [k for k in self._entries if k[0] == id(spec)]:
            del self._entries[key]

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide plan cache (the "statement cache" of this backend).
GLOBAL_DELTA_PLANS = DeltaPlanCache()

#: spec identity -> (spec, lowerable?) — supports() is called per
#: matrix cell and trial lowering is not free, so memoize per spec.
_SUPPORT_CACHE: dict[int, tuple[ProtocolSpec, bool]] = {}


def _lowerable(spec: ProtocolSpec) -> bool:
    cached = _SUPPORT_CACHE.get(id(spec))
    if cached is not None and cached[0] is spec:
        return cached[1]
    try:
        requests = Table("requests", list(REQUEST_COLUMNS))
        history = Table("history", list(REQUEST_COLUMNS))
        lower_delta_plan(_spec_builder(spec)(requests, history))
    except Exception:
        ok = False
    else:
        ok = True
    _SUPPORT_CACHE[id(spec)] = (spec, ok)
    return ok


class DeltaPlanEvaluator(SpecEvaluator):
    """One spec on maintained delta plans, with maintenance telemetry."""

    def __init__(self, spec: ProtocolSpec) -> None:
        self._spec = spec
        if spec.relalg is None:
            self.source = spec.sql
        self._stats: dict[str, Any] = {
            "steps": 0,
            "rebuilds": 0,
            "inserts": 0,
            "retracts": 0,
            "maintain_s": 0.0,
            "cache_hits": 0,
            "cache_misses": 0,
            "operator_s": {},
        }
        self._last: dict[str, Any] = {}

    def evaluate(self, requests: Table, history: Table) -> ProtocolDecision:
        plan, hit = GLOBAL_DELTA_PLANS.get(self._spec, requests, history)
        relation = plan.refresh()
        stats = self._stats
        last = plan.last
        stats["steps"] += 1
        stats["cache_hits" if hit else "cache_misses"] += 1
        stats["rebuilds"] += 1 if last.get("rebuild") else 0
        stats["inserts"] += last.get("inserts", 0)
        stats["retracts"] += last.get("retracts", 0)
        stats["maintain_s"] += last.get("maintain_s", 0.0)
        operator_s = stats["operator_s"]
        for label, seconds in last.get("operator_s", {}).items():
            operator_s[label] = operator_s.get(label, 0.0) + seconds
        self._last = dict(last)
        return ProtocolDecision(
            qualified=[Request.from_row(row) for row in relation.rows]
        )

    def reset(self) -> None:
        GLOBAL_DELTA_PLANS.evict_spec(self._spec)

    def maintenance_stats(self) -> dict[str, Any]:
        """Cumulative delta/cache counters for reports and benches."""
        stats = dict(self._stats)
        stats["operator_s"] = dict(self._stats["operator_s"])
        stats["last"] = dict(self._last)
        return stats


class CompiledDeltaBackend(ExecutionBackend):
    name = "compiled-delta"
    description = "relalg engine, incrementally maintained delta plans"
    consumes = ("relalg", "sql")

    def supports(self, spec: ProtocolSpec) -> bool:
        # Dialect intersection is necessary but not sufficient: the
        # matrix contract says supports() must *exactly* predict
        # whether evaluator() lowers, so trial-lower once per spec.
        return super().supports(spec) and _lowerable(spec)

    def _reject(self, spec: ProtocolSpec) -> BackendError:
        if not super().supports(spec):
            # Plain dialect mismatch; the base message says what's
            # missing.
            return super()._reject(spec)
        # The dialects intersect but the plan refused to lower: cite the
        # static analyzer's operator-path diagnosis (which operator, in
        # which dialect) instead of an opaque refusal.
        from repro.analysis.lowerability import explain_refusal

        diagnosis = explain_refusal(spec)
        reason = (
            diagnosis
            or "the plan has no incremental lowering (trial-lowering failed)"
        )
        return BackendError(
            f"backend {self.name!r} cannot run spec {spec.name!r}: {reason}"
        )

    def evaluator(self, spec: ProtocolSpec, **options) -> SpecEvaluator:
        if not self.supports(spec):
            raise self._reject(spec)
        return DeltaPlanEvaluator(spec)


@register_backend
def _make_compiled_delta() -> CompiledDeltaBackend:
    return CompiledDeltaBackend()
