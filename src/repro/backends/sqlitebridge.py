"""sqlite3 backend: the spec's SQL on a real SQL engine.

Each evaluation loads the pending/history snapshots into fresh
in-memory tables — deliberately so: this backend exists to
cross-validate the in-process engines against an independent SQL
implementation and to serve as the SQL data point in the language
ablation, not to win benchmarks.  (A production deployment would keep
the tables resident; see :class:`repro.sqlbridge.bridge.SqliteScheduler`
for that mode.)
"""

from __future__ import annotations

from repro.backends.base import (
    ExecutionBackend,
    SpecEvaluator,
    register_backend,
)
from repro.model.request import Request
from repro.protocols.base import ProtocolDecision
from repro.protocols.spec import ProtocolSpec
from repro.relalg.table import Table
from repro.sqlbridge.bridge import SqliteScheduler


class SqliteEvaluator(SpecEvaluator):
    def __init__(self, spec: ProtocolSpec) -> None:
        self._sql = spec.sqlite_text()
        self.source = spec.sql if spec.sql is not None else self._sql

    def evaluate(self, requests: Table, history: Table) -> ProtocolDecision:
        with SqliteScheduler() as backend:
            backend.load_rows("requests", requests.rows)
            backend.load_rows("history", history.rows)
            rows = backend.execute(self._sql)
        return ProtocolDecision(
            qualified=[Request.from_row(row) for row in rows]
        )


class SqliteBackend(ExecutionBackend):
    name = "sqlite"
    description = "the spec's SQL executed by in-memory sqlite3"
    consumes = ("sqlite-sql",)

    def evaluator(self, spec: ProtocolSpec, **options) -> SpecEvaluator:
        if not self.supports(spec):
            raise self._reject(spec)
        return SqliteEvaluator(spec)


@register_backend
def _make_sqlite() -> SqliteBackend:
    return SqliteBackend()
