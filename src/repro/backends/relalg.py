"""Relational-algebra backends: interpreted and compile-once.

Both lower the spec's ``relalg`` logical-plan builder when present and
fall back to planning the spec's SQL text through
:class:`repro.relalg.sql.SqlPlanner` — a spec written only as SQL still
runs on this engine.  The difference is purely the evaluation strategy
(the paper's research question 4):

* ``interpreted`` re-derives everything per step — the eager pipeline
  dialect when the spec ships one (the paper's "naive" CTE-at-a-time
  evaluation), otherwise a fresh optimize+bind+execute of the logical
  plan;
* ``compiled`` analyzes once per (requests, history) table pair via
  :class:`repro.relalg.plan.PlanCache` and only executes physical
  operators per step.
"""

from __future__ import annotations

from repro.backends.base import (
    ExecutionBackend,
    SpecEvaluator,
    register_backend,
)
from repro.model.request import Request
from repro.protocols.base import ProtocolDecision
from repro.protocols.spec import ProtocolSpec
from repro.relalg.plan import PlanCache
from repro.relalg.sql import SqlPlanner
from repro.relalg.table import Table


def _rows_to_decision(rows) -> ProtocolDecision:
    return ProtocolDecision(
        qualified=[Request.from_row(row) for row in rows]
    )


class InterpretedRelalgEvaluator(SpecEvaluator):
    """Per-step rebuild-and-execute on the relalg engine."""

    def __init__(self, spec: ProtocolSpec) -> None:
        self._spec = spec
        if spec.relalg_pipeline is None and spec.relalg is None:
            self.source = spec.sql

    def evaluate(self, requests: Table, history: Table) -> ProtocolDecision:
        spec = self._spec
        if spec.relalg_pipeline is not None:
            return _rows_to_decision(spec.relalg_pipeline(requests, history))
        if spec.relalg is not None:
            return _rows_to_decision(
                spec.relalg(requests, history).execute().rows
            )
        planner = SqlPlanner({"requests": requests, "history": history})
        return _rows_to_decision(planner.execute(spec.sql).rows)


class CompiledRelalgEvaluator(SpecEvaluator):
    """Compile-once physical plans, cached per table pair."""

    def __init__(self, spec: ProtocolSpec) -> None:
        if spec.relalg is not None:
            builder = spec.relalg
        else:
            self.source = spec.sql

            def builder(requests: Table, history: Table):
                planner = SqlPlanner(
                    {"requests": requests, "history": history}
                )
                return planner.plan(spec.sql, defer_ctes=True)

        self.plans = PlanCache(builder)

    def evaluate(self, requests: Table, history: Table) -> ProtocolDecision:
        return _rows_to_decision(
            self.plans.get(requests, history).execute().rows
        )

    def reset(self) -> None:
        self.plans.clear()

    def explain(self, requests: Table, history: Table) -> str:
        """Physical EXPLAIN of the cached plan for this table pair."""
        return self.plans.get(requests, history).explain()


class InterpretedRelalgBackend(ExecutionBackend):
    name = "interpreted"
    description = "relalg engine, re-evaluated from scratch each step"
    consumes = ("relalg-pipeline", "relalg", "sql")

    def evaluator(self, spec: ProtocolSpec, **options) -> SpecEvaluator:
        if not self.supports(spec):
            raise self._reject(spec)
        return InterpretedRelalgEvaluator(spec)


class CompiledRelalgBackend(ExecutionBackend):
    name = "compiled"
    description = "relalg engine, compile-once cached physical plans"
    consumes = ("relalg", "sql")

    def evaluator(self, spec: ProtocolSpec, **options) -> SpecEvaluator:
        if not self.supports(spec):
            raise self._reject(spec)
        return CompiledRelalgEvaluator(spec)


@register_backend
def _make_interpreted() -> InterpretedRelalgBackend:
    return InterpretedRelalgBackend()


@register_backend
def _make_compiled() -> CompiledRelalgBackend:
    return CompiledRelalgBackend()
