"""Incremental backend: lock views maintained, not re-derived.

Research question 4 ("How can the performance of declaratively
programmed schedulers be improved?") answered with classical
incremental view maintenance: a lock-model spec's lock footprint is a
view over the history relation, and history changes only by (a)
appending the executed batch and (b) pruning finished transactions.
Both deltas reach the evaluator through the scheduler's ``observe_*``
hooks, so the views are maintained in O(|batch|) per step instead of
being rebuilt in O(|history|).

Because the state lives in the evaluator, it must observe *every*
history change.  Driving it through
:class:`~repro.core.scheduler.DeclarativeScheduler` guarantees that;
for standalone use, call :meth:`LockViewEvaluator.resync` after loading
history out-of-band.
"""

from __future__ import annotations

from typing import Sequence

from repro.backends.base import (
    ExecutionBackend,
    SpecEvaluator,
    register_backend,
)
from repro.backends.imperative import walk_pending
from repro.model.request import Operation, Request
from repro.protocols.base import ProtocolDecision
from repro.protocols.spec import LockModel, ProtocolSpec
from repro.relalg.table import Table


class LockViewEvaluator(SpecEvaluator):
    """Maintained WLocked/RLocked views for a lock-model spec."""

    def __init__(self, model: LockModel) -> None:
        self._model = model
        self._init_state()

    def _init_state(self) -> None:
        #: obj -> set of active writer transactions (WLockedObjects).
        self._write_locks: dict[int, set[int]] = {}
        #: obj -> set of active pure-reader transactions (RLockedObjects).
        self._read_locks: dict[int, set[int]] = {}
        #: ta -> objects it has read / written (for pruning and upgrades).
        self._reads_of: dict[int, set[int]] = {}
        self._writes_of: dict[int, set[int]] = {}
        self._finished: set[int] = set()

    # -- incremental maintenance ------------------------------------------

    def observe_executed(self, batch: Sequence[Request]) -> None:
        model = self._model
        for request in batch:
            ta = request.ta
            operation = request.operation
            if operation is Operation.READ and model.reads_are_writes:
                operation = Operation.WRITE
            if operation is Operation.WRITE:
                self._writes_of.setdefault(ta, set()).add(request.obj)
                if ta not in self._finished:
                    self._write_locks.setdefault(request.obj, set()).add(ta)
                    # A write subsumes the transaction's own read lock.
                    readers = self._read_locks.get(request.obj)
                    if readers:
                        readers.discard(ta)
            elif operation is Operation.READ:
                if not model.reads_take_locks:
                    continue
                self._reads_of.setdefault(ta, set()).add(request.obj)
                if (
                    ta not in self._finished
                    and request.obj not in self._writes_of.get(ta, ())
                ):
                    self._read_locks.setdefault(request.obj, set()).add(ta)
            else:  # commit/abort: release everything the transaction holds
                self._finished.add(ta)
                self._release(ta)

    def observe_pruned(self, transactions: set[int]) -> None:
        for ta in transactions:
            self._release(ta)
            self._reads_of.pop(ta, None)
            self._writes_of.pop(ta, None)
            self._finished.discard(ta)

    def _release(self, ta: int) -> None:
        for obj in self._writes_of.get(ta, ()):
            holders = self._write_locks.get(obj)
            if holders:
                holders.discard(ta)
                if not holders:
                    del self._write_locks[obj]
        for obj in self._reads_of.get(ta, ()):
            holders = self._read_locks.get(obj)
            if holders:
                holders.discard(ta)
                if not holders:
                    del self._read_locks[obj]

    def reset(self) -> None:
        self._init_state()

    def resync(self, history: Table) -> None:
        """Rebuild the maintained views from a history table (for
        standalone use where history was loaded out-of-band)."""
        self.reset()
        id_pos = history.schema.resolve("id")
        rows = sorted(history.rows, key=lambda row: row[id_pos])
        self.observe_executed([Request.from_row(row) for row in rows])

    # -- scheduling --------------------------------------------------------

    def evaluate(self, requests: Table, history: Table) -> ProtocolDecision:
        """Same qualified set as the spec's query dialects, from the
        maintained views.  The *history* argument is ignored by design —
        the state already reflects it."""
        return walk_pending(
            self._model, requests, self._read_locks, self._write_locks
        )


class IncrementalBackend(ExecutionBackend):
    name = "incremental"
    description = "incrementally maintained lock views (O(batch)/step)"
    consumes = ("lock-model",)

    def evaluator(self, spec: ProtocolSpec, **options) -> SpecEvaluator:
        if spec.lock_model is None:
            raise self._reject(spec)
        return LockViewEvaluator(spec.lock_model)


@register_backend
def _make_incremental() -> IncrementalBackend:
    return IncrementalBackend()
