"""Imperative-reference backend: classical lock-table evaluation.

The execution technique the paper argues hand-written schedulers end up
re-implementing: rebuild a lock table from the history relation each
step, then walk the pending requests in (ta, intrata) order applying
grant rules.  Here that technique is written **once**, parameterized by
the spec's declarative :class:`~repro.protocols.spec.LockModel`; specs
whose rule needs more than a lock matrix (admission, counting) supply
an ``imperative`` set-at-a-time callable instead.

(:class:`repro.baselines.imperative.ImperativeSS2PLScheduler` remains
the deliberately hand-coded, single-protocol baseline whose line count
the E9 productivity study measures; this module is the generic engine.)
"""

from __future__ import annotations

from repro.backends.base import (
    ExecutionBackend,
    SpecEvaluator,
    register_backend,
)
from repro.model.request import Operation, Request
from repro.protocols.base import ProtocolDecision
from repro.protocols.spec import LockModel, ProtocolSpec
from repro.relalg.table import Table


def walk_pending(
    model: LockModel,
    requests: Table,
    read_locks: dict[int, set[int]],
    write_locks: dict[int, set[int]],
) -> ProtocolDecision:
    """Grant pending requests against held locks under *model*.

    Walks in (ta, intrata) order — the tie-breaking Listing 1's
    ``r2.ta > r1.ta`` intra-batch rule implies — registering claims
    whether or not a request is granted (the declarative formulations
    join the raw requests table, not the qualified set).  Shared by the
    imperative and incremental backends, which differ only in where
    ``read_locks``/``write_locks`` come from.
    """
    decision = ProtocolDecision()
    ta_pos = requests.schema.resolve("ta")
    intrata_pos = requests.schema.resolve("intrata")
    rows = sorted(requests.rows, key=lambda r: (r[ta_pos], r[intrata_pos]))

    batch_read: dict[int, set[int]] = {}
    batch_write: dict[int, set[int]] = {}
    for row in rows:
        request = Request.from_row(row)
        if not request.operation.is_data_access:
            decision.qualified.append(request)
            continue
        obj, ta = request.obj, request.ta
        is_write = (
            request.operation is Operation.WRITE or model.reads_are_writes
        )
        holders_w = write_locks.get(obj, set()) | batch_write.get(obj, set())
        if not is_write:
            granted = (
                not model.reads_check_writers or not (holders_w - {ta})
            )
            reason = "write lock held"
            if model.reads_take_locks:
                batch_read.setdefault(obj, set()).add(ta)
        else:
            blockers: set[int] = set()
            if model.writes_check_writers:
                blockers |= holders_w
            if model.writes_check_readers:
                blockers |= read_locks.get(obj, set())
                blockers |= batch_read.get(obj, set())
            granted = not (blockers - {ta})
            reason = "conflicting lock held"
            batch_write.setdefault(obj, set()).add(ta)
        if granted:
            decision.qualified.append(request)
        else:
            decision.denials[request.id] = reason
    decision.qualified.sort(key=lambda r: r.id)
    return decision


def locks_from_history(
    model: LockModel, history: Table
) -> tuple[dict[int, set[int]], dict[int, set[int]]]:
    """(read_locks, write_locks) held by unfinished transactions."""
    ta_pos = history.schema.resolve("ta")
    op_pos = history.schema.resolve("operation")
    obj_pos = history.schema.resolve("object")

    finished: set[int] = set()
    for row in history.rows:
        if row[op_pos] in ("c", "a"):
            finished.add(row[ta_pos])

    read_locks: dict[int, set[int]] = {}
    write_locks: dict[int, set[int]] = {}
    for row in history.rows:
        ta = row[ta_pos]
        if ta in finished:
            continue
        op = row[op_pos]
        if op == "w" or (op == "r" and model.reads_are_writes):
            write_locks.setdefault(row[obj_pos], set()).add(ta)
    if model.reads_take_locks and not model.reads_are_writes:
        for row in history.rows:
            ta = row[ta_pos]
            if ta in finished or row[op_pos] != "r":
                continue
            obj = row[obj_pos]
            if ta in write_locks.get(obj, set()):
                continue  # upgraded: the write lock subsumes the read
            read_locks.setdefault(obj, set()).add(ta)
    return read_locks, write_locks


class LockTableEvaluator(SpecEvaluator):
    """Stateless reference evaluation: locks rebuilt per step."""

    def __init__(self, model: LockModel) -> None:
        self._model = model

    def evaluate(self, requests: Table, history: Table) -> ProtocolDecision:
        read_locks, write_locks = locks_from_history(self._model, history)
        return walk_pending(self._model, requests, read_locks, write_locks)


class CallableEvaluator(SpecEvaluator):
    """Adapter for a spec's hand-written set-at-a-time callable."""

    def __init__(self, fn) -> None:
        self._fn = fn

    def evaluate(self, requests: Table, history: Table) -> ProtocolDecision:
        return self._fn(requests, history)


class ImperativeBackend(ExecutionBackend):
    name = "imperative"
    description = "reference lock-table walk (or the spec's own callable)"
    consumes = ("imperative", "lock-model")

    def evaluator(self, spec: ProtocolSpec, **options) -> SpecEvaluator:
        if spec.imperative is not None:
            return CallableEvaluator(spec.imperative)
        if spec.lock_model is not None:
            return LockTableEvaluator(spec.lock_model)
        raise self._reject(spec)


@register_backend
def _make_imperative() -> ImperativeBackend:
    return ImperativeBackend()
