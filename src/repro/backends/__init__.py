"""Pluggable execution backends for declarative protocol specs.

One :class:`~repro.protocols.spec.ProtocolSpec`, many engines — the
registry mirrors the driver-adapter pattern of multi-database query
mappers.  Importing this package registers the built-in backends:

============== ======================================================
interpreted    relalg engine, re-evaluated from scratch each step
compiled       relalg engine, compile-once cached physical plans
compiled-delta relalg engine, incrementally maintained delta plans
               (O(|delta|)/step)
sqlfront       the spec's SQL text parsed/planned by our SQL frontend
sqlite         the spec's SQL executed by in-memory sqlite3
datalog        the spec's Datalog rules on the stratified engine
imperative     reference lock-table walk (or the spec's own callable)
incremental    incrementally maintained lock views (O(batch)/step)
============== ======================================================

Use :func:`build_protocol` (or :class:`SpecProtocol` directly) to pair
a registered spec with a backend behind the ordinary
:class:`~repro.protocols.base.Protocol` interface.
"""

from repro.backends.base import (
    BACKEND_REGISTRY,
    BackendError,
    ExecutionBackend,
    SpecEvaluator,
    SpecProtocol,
    backend_names,
    register_backend,
    resolve_backend,
    supported_backends,
)

# Importing the implementations populates the registry.
from repro.backends import relalg as _relalg  # noqa: F401
from repro.backends import delta as _delta  # noqa: F401
from repro.backends import sqlfront as _sqlfront  # noqa: F401
from repro.backends import sqlitebridge as _sqlitebridge  # noqa: F401
from repro.backends import datalog as _datalog  # noqa: F401
from repro.backends import imperative as _imperative  # noqa: F401
from repro.backends import incremental as _incremental  # noqa: F401


def build_protocol(
    spec: "str | object",
    backend: "str | None" = None,
    **backend_options,
) -> SpecProtocol:
    """Bind a spec (by name or instance) to a backend (by name).

    Raises :class:`KeyError` for an unknown spec name and
    :class:`BackendError` for an unknown/unsupported backend, each
    naming the valid choices.
    """
    from repro.protocols.spec import ProtocolSpec, get_spec

    if not isinstance(spec, ProtocolSpec):
        spec = get_spec(spec)
    return SpecProtocol(spec, backend=backend, **backend_options)


__all__ = [
    "BACKEND_REGISTRY",
    "BackendError",
    "ExecutionBackend",
    "SpecEvaluator",
    "SpecProtocol",
    "backend_names",
    "build_protocol",
    "register_backend",
    "resolve_backend",
    "supported_backends",
]
