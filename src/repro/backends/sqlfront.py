"""SQL-frontend backend: the spec's literal SQL text on our engine.

Where the relalg backends prefer a hand-built logical plan, this
backend *insists* on the SQL dialect — it exists to demonstrate the
paper's language question end-to-end: the same text a real DBMS would
run parses, plans and compiles on this repository's engine with no
hand-written plan at all.  SQL in, schedule out.
"""

from __future__ import annotations

from repro.backends.base import (
    ExecutionBackend,
    SpecEvaluator,
    register_backend,
)
from repro.model.request import Request
from repro.protocols.base import ProtocolDecision
from repro.protocols.spec import ProtocolSpec
from repro.relalg.plan import PlanCache
from repro.relalg.sql import SqlPlanner
from repro.relalg.table import Table


class SqlFrontendEvaluator(SpecEvaluator):
    """Parse/plan once per table pair (``compiled=True``, the default)
    or re-parse per step (the E8 interpreted ablation)."""

    def __init__(self, spec: ProtocolSpec, compiled: bool = True) -> None:
        self._sql = spec.sql
        self.source = spec.sql
        self.compiled = compiled

        def builder(requests: Table, history: Table):
            planner = SqlPlanner({"requests": requests, "history": history})
            return planner.plan(self._sql, defer_ctes=True)

        self.plans = PlanCache(builder)

    def evaluate(self, requests: Table, history: Table) -> ProtocolDecision:
        if self.compiled:
            relation = self.plans.get(requests, history).execute()
        else:
            planner = SqlPlanner({"requests": requests, "history": history})
            relation = planner.execute(self._sql)
        return ProtocolDecision(
            qualified=[Request.from_row(row) for row in relation.rows]
        )

    def reset(self) -> None:
        self.plans.clear()


class SqlFrontendBackend(ExecutionBackend):
    name = "sqlfront"
    description = "the spec's SQL text parsed and planned by our frontend"
    consumes = ("sql",)

    def evaluator(self, spec: ProtocolSpec, **options) -> SpecEvaluator:
        if not self.supports(spec):
            raise self._reject(spec)
        return SqlFrontendEvaluator(spec, **options)


@register_backend
def _make_sqlfront() -> SqlFrontendBackend:
    return SqlFrontendBackend()
