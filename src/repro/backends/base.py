"""Execution backends: pluggable evaluators for protocol specs.

A :class:`ProtocolSpec` says *what* qualifies; an
:class:`ExecutionBackend` says *how* that rule is evaluated each
scheduler step.  Backends register themselves in
:data:`BACKEND_REGISTRY` (mirroring the driver-adapter pattern of
multi-database query mappers: one spec, many adapters), and
:class:`SpecProtocol` pairs a spec with a backend behind the ordinary
:class:`~repro.protocols.base.Protocol` interface, so the scheduler
core never learns which engine runs underneath it.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional, Sequence

from repro.model.request import Request
from repro.protocols.base import Protocol, ProtocolDecision
from repro.protocols.spec import ProtocolSpec
from repro.relalg.table import Table


class BackendError(Exception):
    """Raised when a backend cannot lower the given spec."""


class SpecEvaluator(abc.ABC):
    """One spec lowered by one backend, ready to evaluate per step.

    Subclasses hold whatever lowered artifact the backend produces
    (cached physical plan, parsed Datalog program, sqlite connection,
    maintained lock views) and evaluate it against the current table
    contents.
    """

    #: The declarative text this evaluator consumes, when the dialect is
    #: textual (SQL/Datalog); surfaced as the protocol's
    #: ``declarative_source`` so productivity accounting (E9) reflects
    #: the formulation actually running.
    source: Optional[str] = None

    @abc.abstractmethod
    def evaluate(self, requests: Table, history: Table) -> ProtocolDecision:
        """Qualified requests (any order; the adapter sorts by id)."""

    def reset(self) -> None:
        """Drop lowered state that caches table identity/content."""

    # Stateful evaluators (incremental view maintenance) override these.
    def observe_executed(self, batch: Sequence[Request]) -> None:
        pass

    def observe_pruned(self, transactions: set[int]) -> None:
        pass


class ExecutionBackend(abc.ABC):
    """A strategy for lowering and evaluating protocol specs."""

    #: Machine name used by registries, CLIs, and benches.
    name: str = "abstract"
    description: str = ""
    #: Dialects this backend can lower, in preference order.
    consumes: tuple[str, ...] = ()

    def supports(self, spec: ProtocolSpec) -> bool:
        """True when *spec* carries a dialect this backend can lower."""
        return bool(set(self.consumes) & spec.dialects())

    @abc.abstractmethod
    def evaluator(self, spec: ProtocolSpec, **options) -> SpecEvaluator:
        """Lower *spec*; raise :class:`BackendError` when unsupported."""

    def _reject(self, spec: ProtocolSpec) -> BackendError:
        return BackendError(
            f"backend {self.name!r} cannot run spec {spec.name!r}: "
            f"needs one of {list(self.consumes)}, spec provides "
            f"{sorted(spec.dialects())}"
        )


#: name -> backend factory; populated by :func:`register_backend`.
BACKEND_REGISTRY: Dict[str, Callable[[], ExecutionBackend]] = {}


def register_backend(
    factory: Callable[[], ExecutionBackend],
) -> Callable[[], ExecutionBackend]:
    """Register a zero-argument backend factory under its product's name."""
    instance = factory()
    BACKEND_REGISTRY[instance.name] = factory
    return factory


def backend_names() -> list[str]:
    return sorted(BACKEND_REGISTRY)


def resolve_backend(backend: "str | ExecutionBackend") -> ExecutionBackend:
    """Name -> instance; raises with the valid choices on a bad name."""
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        factory = BACKEND_REGISTRY[backend]
    except KeyError:
        raise BackendError(
            f"unknown backend {backend!r}; "
            f"valid backends: {', '.join(backend_names())}"
        ) from None
    return factory()


def supported_backends(spec: ProtocolSpec) -> list[str]:
    """Names of registered backends that declare support for *spec*."""
    return [
        name
        for name in backend_names()
        if BACKEND_REGISTRY[name]().supports(spec)
    ]


class SpecProtocol(Protocol):
    """A :class:`ProtocolSpec` bound to an :class:`ExecutionBackend`.

    This is the only bridge between the declarative layer and the
    scheduler: the backend's evaluator produces the candidate set, the
    adapter normalizes it to arrival (id) order, and the spec's
    ``post_process`` policy — if any — runs identically regardless of
    backend.
    """

    def __init__(
        self,
        spec: ProtocolSpec,
        backend: "str | ExecutionBackend | None" = None,
        name: Optional[str] = None,
        description: Optional[str] = None,
        **backend_options,
    ) -> None:
        self.spec = spec
        self.backend = resolve_backend(
            backend if backend is not None else spec.default_backend
        )
        if not self.backend.supports(spec):
            raise self.backend._reject(spec)
        self._evaluator = self.backend.evaluator(spec, **backend_options)
        if name is not None:
            self.name = name
        elif self.backend.name == spec.default_backend:
            self.name = spec.name
        else:
            self.name = f"{spec.name}@{self.backend.name}"
        self.description = (
            description
            if description is not None
            else spec.description or f"{spec.name} on {self.backend.name}"
        )
        self.capabilities = spec.capabilities
        self.declarative_source = (
            self._evaluator.source
            if self._evaluator.source is not None
            else spec.declarative_source
        )

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        decision = self._evaluator.evaluate(requests, history)
        decision.qualified.sort(key=lambda r: r.id)
        if self.spec.post_process is not None:
            decision = self.spec.post_process(decision, requests, history)
        return decision

    def reset(self) -> None:
        self._evaluator.reset()

    def maintenance_stats(self) -> Optional[dict]:
        """Delta/cache maintenance counters, when the backend keeps
        incrementally maintained state (None otherwise).  Surfaced in
        scenario reports and the step-cost bench."""
        stats = getattr(self._evaluator, "maintenance_stats", None)
        return stats() if callable(stats) else None

    def observe_executed(self, batch: Sequence[Request]) -> None:
        self._evaluator.observe_executed(batch)

    def observe_pruned(self, transactions: set[int]) -> None:
        self._evaluator.observe_pruned(transactions)
