"""Datalog backend: the spec's rule set on the stratified engine.

The succinct-language formulation (paper Section 5): the program is
parsed once at lowering time; each step loads the two relations as
facts, evaluates to fixpoint, and reads off ``qualified``.  Denials are
attributed from the ``denied`` predicate when the rule set derives one,
and the last evaluation is kept for why-provenance
(:meth:`DatalogEvaluator.explain_denial`).
"""

from __future__ import annotations

from repro.backends.base import (
    ExecutionBackend,
    SpecEvaluator,
    register_backend,
)
from repro.datalog.engine import Database, evaluate
from repro.datalog.program import Program
from repro.model.request import Request
from repro.protocols.base import ProtocolDecision
from repro.protocols.spec import ProtocolSpec
from repro.relalg.table import Table


class DatalogEvaluator(SpecEvaluator):
    def __init__(self, spec: ProtocolSpec) -> None:
        self._spec = spec
        self.source = spec.datalog
        self.program = Program.parse(spec.datalog)
        self._last_db: Database | None = None

    def evaluate(self, requests: Table, history: Table) -> ProtocolDecision:
        db = Database()
        db.add_facts("requests", requests.rows)
        db.add_facts("history", history.rows)
        evaluate(self.program, db)
        self._last_db = db
        decision = ProtocolDecision(
            qualified=[
                Request.from_row(row) for row in sorted(db.facts("qualified"))
            ]
        )
        for fact in db.facts("denied"):
            decision.denials[fact[0]] = (
                f"denied by {self._spec.name} rules"
            )
        return decision

    def explain_denial(self, request_id: int) -> str:
        """Why-provenance for the last batch's denial of *request_id*."""
        from repro.datalog.explain import explain

        if self._last_db is None:
            raise RuntimeError("no schedule() call to explain yet")
        return explain(
            self.program, self._last_db, "denied", (request_id,)
        ).format()


class DatalogBackend(ExecutionBackend):
    name = "datalog"
    description = "the spec's Datalog rules on the stratified engine"
    consumes = ("datalog",)

    def evaluator(self, spec: ProtocolSpec, **options) -> SpecEvaluator:
        if not self.supports(spec):
            raise self._reject(spec)
        return DatalogEvaluator(spec)


@register_backend
def _make_datalog() -> DatalogBackend:
    return DatalogBackend()
