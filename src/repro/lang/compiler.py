"""SDL → Datalog compilation.

Each SDL condition expands to a Datalog body fragment over a standard
preamble (the lock-footprint predicates every protocol re-derives); the
deny rules become ``denied`` rules, and a final ``qualified`` rule takes
the complement.  The emitted program is ordinary stratified Datalog —
SDL adds no evaluation machinery, only vocabulary.
"""

from __future__ import annotations

from repro.datalog.program import Program
from repro.lang.ast import Condition, DenyRule, ProtocolSpec


class SDLCompileError(Exception):
    """Raised for semantically invalid specs (e.g. a condition that
    cannot apply to the rule's scope)."""


#: Preamble rules, keyed by the derived predicate each provides.  Only
#: the predicates a spec actually uses are emitted.
_PREAMBLE: dict[str, str] = {
    "finished": (
        'finished(Ta) :- history(_, Ta, _, "c", _).\n'
        'finished(Ta) :- history(_, Ta, _, "a", _).'
    ),
    "wlocked": 'wlocked(Obj, Ta) :- history(_, Ta, _, "w", Obj), not finished(Ta).',
    "rlocked": (
        'rlocked(Obj, Ta) :- history(_, Ta, _, "r", Obj), not finished(Ta), '
        "not wlocked(Obj, Ta)."
    ),
    "conflictops": (
        'conflictops("w", "w").\n'
        'conflictops("w", "r").\n'
        'conflictops("r", "w").'
    ),
    "wcount": "wcount(Obj, count(Ta)) :- wlocked(Obj, Ta).",
}

#: condition name -> (body fragment template, required preamble keys).
#: Templates may reference Ta/Obj/Op of the request being judged.
_CONDITION_BODIES: dict[str, tuple[str, tuple[str, ...]]] = {
    "write_locked_by_other": (
        "wlocked(Obj, Ta2), Ta != Ta2",
        ("finished", "wlocked"),
    ),
    "read_locked_by_other": (
        "rlocked(Obj, Ta2), Ta != Ta2",
        ("finished", "wlocked", "rlocked"),
    ),
    "locked_by_other": (
        "anylocked(Obj, Ta2), Ta != Ta2",
        ("finished", "wlocked", "rlocked", "anylocked"),
    ),
    "batch_conflict": (
        "requests(_, Ta1, _, Op1, Obj), Ta > Ta1, conflictops(Op1, Op)",
        ("conflictops",),
    ),
    "batch_write_conflict": (
        'requests(_, Ta1, _, "w", Obj), Ta > Ta1',
        (),
    ),
    "uncommitted_writers_at_least": (
        "wcount(Obj, N), N >= {arg}",
        ("finished", "wlocked", "wcount"),
    ),
}

_EXTRA_PREAMBLE = {
    "anylocked": (
        "anylocked(Obj, Ta) :- wlocked(Obj, Ta).\n"
        "anylocked(Obj, Ta) :- rlocked(Obj, Ta)."
    ),
}

_SCOPE_OP = {"read": '"r"', "write": '"w"', "commit": '"c"', "abort": '"a"'}


def compile_spec(spec: ProtocolSpec) -> tuple[Program, str]:
    """Compile an SDL spec to a Datalog program.

    Returns ``(program, source_text)``.  The program defines
    ``qualified(Id, Ta, I, Op, Obj)`` over extensional ``requests`` and
    ``history`` relations (Table 2 schema).
    """
    needed: set[str] = set()
    denied_rules: list[str] = []
    for rule in spec.rules:
        denied_rules.append(_compile_deny(rule, needed))

    lines: list[str] = [f"% compiled from SDL protocol {spec.name!r}"]
    for key in ("finished", "wlocked", "rlocked", "conflictops", "wcount"):
        if key in needed:
            lines.append(_PREAMBLE[key])
    for key, text in _EXTRA_PREAMBLE.items():
        if key in needed:
            lines.append(text)
    lines.extend(denied_rules)
    if denied_rules:
        lines.append(
            "qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj), "
            "not denied(Id)."
        )
    else:
        lines.append(
            "qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj)."
        )
    source = "\n".join(lines) + "\n"
    return Program.parse(source), source


def _compile_deny(rule: DenyRule, needed: set[str]) -> str:
    head = "denied(Id)"
    body_parts: list[str] = []
    if rule.scope == "any":
        body_parts.append("requests(Id, Ta, _, Op, Obj)")
    else:
        op_const = _SCOPE_OP[rule.scope]
        # Op still bound for batch_conflict's conflictops lookup.
        body_parts.append(f"requests(Id, Ta, _, Op, Obj), Op = {op_const}")
    for condition in rule.conditions:
        body_parts.append(_condition_body(condition, needed))
    return f"{head} :- {', '.join(body_parts)}."


def _condition_body(condition: Condition, needed: set[str]) -> str:
    try:
        template, requirements = _CONDITION_BODIES[condition.name]
    except KeyError:  # pragma: no cover - parser validates names
        raise SDLCompileError(f"unknown condition {condition.name!r}") from None
    needed.update(requirements)
    if "{arg}" in template:
        if condition.argument is None:
            raise SDLCompileError(
                f"condition {condition.name} requires an argument"
            )
        return template.format(arg=condition.argument)
    return template
