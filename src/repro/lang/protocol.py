"""Protocol adapter: run a compiled SDL spec as a scheduler protocol."""

from __future__ import annotations

from repro.datalog.engine import Database, evaluate
from repro.lang.compiler import compile_spec
from repro.lang.parser import parse_sdl
from repro.model.request import Request
from repro.protocols.base import (
    Capabilities,
    Protocol,
    ProtocolDecision,
)
from repro.relalg.table import Table

#: SS2PL in SDL — the succinctness headline (compare LISTING1_SQL).
SDL_SS2PL = """\
protocol ss2pl {
    deny any   when write_locked_by_other;
    deny write when read_locked_by_other;
    deny any   when batch_conflict;
}
"""

#: Read committed in SDL.
SDL_READ_COMMITTED = """\
protocol read_committed {
    deny write when write_locked_by_other;
    deny write when batch_write_conflict;
}
"""


class SDLProtocol(Protocol):
    """A protocol defined by SDL source text.

    >>> p = SDLProtocol(SDL_SS2PL)
    >>> p.name
    'sdl:ss2pl'
    """

    capabilities = Capabilities(
        performance=True, qos=True, declarative=True, flexible=True,
        high_scalability=True,
    )

    def __init__(self, source: str) -> None:
        self.spec = parse_sdl(source)
        self._program, self.compiled_datalog = compile_spec(self.spec)
        self.name = f"sdl:{self.spec.name}"
        self.description = f"SDL protocol {self.spec.name}"
        self.declarative_source = source

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        db = Database()
        db.add_facts("requests", requests.rows)
        db.add_facts("history", history.rows)
        evaluate(self._program, db)
        rows = sorted(db.facts("qualified"))
        qualified = [Request.from_row(row) for row in rows]
        qualified = self._apply_order(qualified, requests)
        decision = ProtocolDecision(qualified=qualified)
        for fact in db.facts("denied"):
            decision.denials[fact[0]] = "denied by SDL rule"
        return decision

    def _apply_order(
        self, qualified: list[Request], requests: Table
    ) -> list[Request]:
        order = self.spec.order
        if order is None or order.key == "arrival":
            ordered = sorted(qualified, key=lambda r: r.id)
            if order is not None and order.descending:
                ordered.reverse()
            return ordered
        attrs_by_id = getattr(requests, "attrs_by_id", {})

        def attr_key(request: Request):
            attrs = attrs_by_id.get(request.id, request.attrs)
            if order.key == "priority":
                return (attrs.priority, request.id)
            if order.key == "deadline":
                deadline = (
                    attrs.deadline if attrs.deadline is not None else float("inf")
                )
                return (deadline, request.id)
            return (request.ta, request.intrata)

        return sorted(qualified, key=attr_key, reverse=order.descending)
