"""SDL — the Scheduler Definition Language.

The paper's research objective 4: "design a specialized language and
system based on the experiences gained" (Section 3.2), and its Section 5
goal of "a suitable declarative scheduler language which is more
succinct than SQL".  SDL is that language: a tiny protocol-definition
syntax whose primitives are the *scheduling-domain* concepts the SQL and
Datalog formulations keep re-deriving (held locks, batch conflicts,
uncommitted-writer counts), compiled onto the Datalog engine.

SS2PL in SDL is four lines::

    protocol ss2pl {
        deny any   when write_locked_by_other;
        deny write when read_locked_by_other;
        deny any   when batch_conflict;
    }

compared with ~45 lines of SQL (Listing 1) and ~12 Datalog rules —
benchmark E9 quantifies exactly this.
"""

from repro.lang.ast import DenyRule, OrderBy, ProtocolSpec
from repro.lang.parser import SDLSyntaxError, parse_sdl
from repro.lang.compiler import SDLCompileError, compile_spec
from repro.lang.protocol import SDLProtocol, SDL_SS2PL, SDL_READ_COMMITTED

__all__ = [
    "DenyRule",
    "OrderBy",
    "ProtocolSpec",
    "SDLSyntaxError",
    "parse_sdl",
    "SDLCompileError",
    "compile_spec",
    "SDLProtocol",
    "SDL_SS2PL",
    "SDL_READ_COMMITTED",
]
