"""SDL abstract syntax."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

#: Request scopes a deny rule can target.
SCOPES = ("any", "read", "write", "commit", "abort")

#: Built-in conditions (the scheduling-domain primitive vocabulary).
#: Each maps to a Datalog body fragment in the compiler.
CONDITIONS = (
    "write_locked_by_other",
    "read_locked_by_other",
    "locked_by_other",
    "batch_conflict",
    "batch_write_conflict",
    "uncommitted_writers_at_least",  # takes an integer argument
)

#: Order keys for the qualified batch.
ORDER_KEYS = ("arrival", "priority", "deadline", "transaction")


@dataclass(frozen=True, slots=True)
class Condition:
    """One built-in condition, with an optional integer argument."""

    name: str
    argument: Optional[int] = None

    def __str__(self) -> str:
        if self.argument is not None:
            return f"{self.name}({self.argument})"
        return self.name


@dataclass(frozen=True, slots=True)
class DenyRule:
    """``deny <scope> when <condition> [and <condition>]*;``"""

    scope: str
    conditions: tuple

    def __init__(self, scope: str, conditions: Sequence[Condition]) -> None:
        object.__setattr__(self, "scope", scope)
        object.__setattr__(self, "conditions", tuple(conditions))

    def __str__(self) -> str:
        conds = " and ".join(str(c) for c in self.conditions)
        return f"deny {self.scope} when {conds};"


@dataclass(frozen=True, slots=True)
class OrderBy:
    """``order by <key> [asc|desc];``"""

    key: str
    descending: bool = False

    def __str__(self) -> str:
        return f"order by {self.key} {'desc' if self.descending else 'asc'};"


@dataclass(frozen=True, slots=True)
class ProtocolSpec:
    """A parsed SDL protocol."""

    name: str
    rules: tuple = field(default=())
    order: Optional[OrderBy] = None

    def __str__(self) -> str:
        body = "\n".join(f"    {rule}" for rule in self.rules)
        if self.order is not None:
            body += f"\n    {self.order}"
        return f"protocol {self.name} {{\n{body}\n}}"
