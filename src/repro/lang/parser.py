"""SDL parser.

Grammar::

    spec      := "protocol" IDENT "{" item* "}"
    item      := deny | order
    deny      := "deny" scope "when" cond ("and" cond)* ";"
    scope     := "any" | "read" | "write" | "commit" | "abort"
    cond      := IDENT [ "(" INT ")" ]
    order     := "order" "by" key ("asc"|"desc")? ";"

Comments run from ``//`` or ``#`` to end of line.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.lang.ast import (
    CONDITIONS,
    Condition,
    DenyRule,
    ORDER_KEYS,
    OrderBy,
    ProtocolSpec,
    SCOPES,
)


class SDLSyntaxError(Exception):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>(//|\#)[^\n]*)
  | (?P<INT>\d+)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<LBRACE>\{) | (?P<RBRACE>\})
  | (?P<LPAREN>\() | (?P<RPAREN>\))
  | (?P<SEMI>;)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line


def _tokenize(source: str) -> Iterator[_Token]:
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise SDLSyntaxError(f"unexpected character {source[pos]!r}", line)
        kind = match.lastgroup or ""
        text = match.group()
        line += text.count("\n")
        if kind not in ("WS", "COMMENT"):
            yield _Token(kind, text, line)
        pos = match.end()
    yield _Token("EOF", "", line)


class _Parser:
    def __init__(self, source: str) -> None:
        self._tokens = list(_tokenize(source))
        self._pos = 0

    @property
    def _current(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._current
        self._pos += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._current
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise SDLSyntaxError(
                f"expected {wanted!r}, found {token.text!r}", token.line
            )
        return self._advance()

    def spec(self) -> ProtocolSpec:
        self._expect("IDENT", "protocol")
        name = self._expect("IDENT").text
        self._expect("LBRACE")
        rules: list[DenyRule] = []
        order: OrderBy | None = None
        while self._current.kind != "RBRACE":
            token = self._current
            if token.kind != "IDENT":
                raise SDLSyntaxError(
                    f"expected 'deny' or 'order', found {token.text!r}",
                    token.line,
                )
            if token.text == "deny":
                rules.append(self._deny())
            elif token.text == "order":
                if order is not None:
                    raise SDLSyntaxError("duplicate order clause", token.line)
                order = self._order()
            else:
                raise SDLSyntaxError(
                    f"expected 'deny' or 'order', found {token.text!r}",
                    token.line,
                )
        self._expect("RBRACE")
        trailing = self._current
        if trailing.kind != "EOF":
            raise SDLSyntaxError(
                f"unexpected trailing input {trailing.text!r}", trailing.line
            )
        return ProtocolSpec(name=name, rules=tuple(rules), order=order)

    def _deny(self) -> DenyRule:
        self._expect("IDENT", "deny")
        scope_token = self._expect("IDENT")
        if scope_token.text not in SCOPES:
            raise SDLSyntaxError(
                f"unknown scope {scope_token.text!r}; "
                f"expected one of {SCOPES}",
                scope_token.line,
            )
        self._expect("IDENT", "when")
        conditions = [self._condition()]
        while self._current.kind == "IDENT" and self._current.text == "and":
            self._advance()
            conditions.append(self._condition())
        self._expect("SEMI")
        return DenyRule(scope_token.text, conditions)

    def _condition(self) -> Condition:
        token = self._expect("IDENT")
        if token.text not in CONDITIONS:
            raise SDLSyntaxError(
                f"unknown condition {token.text!r}; "
                f"expected one of {CONDITIONS}",
                token.line,
            )
        argument: int | None = None
        if self._current.kind == "LPAREN":
            self._advance()
            argument = int(self._expect("INT").text)
            self._expect("RPAREN")
        if token.text == "uncommitted_writers_at_least" and argument is None:
            raise SDLSyntaxError(
                "uncommitted_writers_at_least requires an integer argument",
                token.line,
            )
        return Condition(token.text, argument)

    def _order(self) -> OrderBy:
        self._expect("IDENT", "order")
        self._expect("IDENT", "by")
        key_token = self._expect("IDENT")
        if key_token.text not in ORDER_KEYS:
            raise SDLSyntaxError(
                f"unknown order key {key_token.text!r}; "
                f"expected one of {ORDER_KEYS}",
                key_token.line,
            )
        descending = False
        if self._current.kind == "IDENT" and self._current.text in ("asc", "desc"):
            descending = self._advance().text == "desc"
        self._expect("SEMI")
        return OrderBy(key_token.text, descending)


def parse_sdl(source: str) -> ProtocolSpec:
    """Parse one SDL protocol definition."""
    return _Parser(source).spec()
