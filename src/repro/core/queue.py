"""The incoming queue buffering requests between client workers and the
scheduler step (paper Section 3.3, step 1)."""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.model.request import Request


class IncomingQueue:
    """FIFO buffer of newly arrived requests with arrival timestamps."""

    def __init__(self) -> None:
        self._queue: deque[tuple[float, Request]] = deque()
        self.total_enqueued = 0

    def enqueue(self, request: Request, now: float = 0.0) -> None:
        self._queue.append((now, request))
        self.total_enqueued += 1

    def drain(self) -> list[Request]:
        """Empty the queue, returning requests in arrival order — the
        paper's "empties the incoming queue and moves all requests into
        the pending request database as a batch job"."""
        batch = [request for __, request in self._queue]
        self._queue.clear()
        return batch

    @property
    def oldest_arrival(self) -> Optional[float]:
        if not self._queue:
            return None
        return self._queue[0][0]

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[Request]:
        return (request for __, request in self._queue)
