"""The declarative scheduler component.

:class:`DeclarativeScheduler` wires together the pieces of the paper's
Figure 1: incoming queue → pending/history stores → protocol query →
batch dispatch.  It is synchronous and time-agnostic — callers supply
``now`` — so the same object serves unit tests (manual stepping), the
virtual-time middleware simulation, and wall-clock measurement of the
declarative overhead (E5).

Robustness extensions (all opt-in; a scheduler built without them
behaves exactly as before):

* ``recovery`` (:class:`~repro.faults.recovery.RecoveryPolicy`) makes
  abort-and-retry first-class: per-transaction pending timeouts with
  exponential backoff, and orphan reaping for crashed clients (their
  granted-but-never-released requests are aborted after a lease).
* ``admission`` (:class:`~repro.faults.admission.AdmissionPolicy`)
  bounds the pending table, shedding whole transactions on overload.
* ``fault_hook`` is called at the very top of :meth:`step` (before any
  state changes) — the injection point for forced step exceptions.
* ``monitor`` (:class:`~repro.faults.invariants.InvariantMonitor`)
  observes submissions, terminal states, and every step.

Two seams let the *same* engine serve both the virtual-time simulator
and the wall-clock serving layer (:mod:`repro.serve`):

* ``clock`` — a zero-argument callable supplying ``now`` whenever a
  caller does not pass one.  The default clock pins ``now`` to 0.0,
  preserving the historical time-agnostic behaviour; the simulator
  keeps passing virtual times explicitly, and the serving layer
  installs a monotonic wall clock.
* ``step_hooks`` — callables invoked with every
  :class:`SchedulerStepResult` at the end of :meth:`step`, after
  recovery ran.  The serving layer uses one to resolve grant futures;
  drivers can attach trace writers the same way.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.queue import IncomingQueue
from repro.core.stores import HistoryStore, PendingStore
from repro.core.triggers import FillLevelTrigger, TriggerPolicy
from repro.faults.admission import AdmissionPolicy
from repro.faults.invariants import InvariantMonitor
from repro.faults.recovery import RecoveryPolicy
from repro.metrics.collector import MetricsCollector
from repro.model.request import NO_OBJECT, Operation, Request
from repro.protocols.base import Protocol, ProtocolDecision


@dataclass(frozen=True, slots=True)
class SchedulerCostModel:
    """Virtual-time model of one scheduler step's own cost.

    Fitted to wall-clock measurements of the relalg backend (the E5
    bench measures the real thing; these constants let the virtual-time
    middleware simulation charge a deterministic, host-independent cost):
    a fixed dispatch overhead plus a per-row term over the scanned
    pending+history rows.
    """

    fixed_cost: float = 2.0e-3
    per_row_cost: float = 8.0e-6

    def step_cost(self, pending_rows: int, history_rows: int) -> float:
        return self.fixed_cost + self.per_row_cost * (pending_rows + history_rows)


@dataclass(frozen=True, slots=True)
class SchedulerConfig:
    """Knobs of the scheduler component.

    ``prune_history`` keeps only requests of active transactions in the
    history store (the paper stores "all *relevant* prior executed
    requests"); disabling it is the history-pruning ablation.
    """

    prune_history: bool = True
    max_batch: Optional[int] = None


@dataclass
class RecoveryActions:
    """What the recovery/admission machinery did during one step.

    Each entry pairs the affected transaction with the abort request
    synthesized into history on its behalf (drivers record these into
    traces and restart the owning clients)."""

    timeouts: list[tuple[int, Request]] = field(default_factory=list)
    orphans: list[tuple[int, Request]] = field(default_factory=list)
    sheds: list[tuple[int, Request]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.timeouts or self.orphans or self.sheds)


@dataclass
class SchedulerStepResult:
    """Telemetry of one scheduler step."""

    now: float
    drained: int
    pending_before: int
    pending_after: int
    history_rows: int
    qualified: list[Request] = field(default_factory=list)
    query_seconds: float = 0.0
    denials: dict[int, str] = field(default_factory=dict)
    recovery: RecoveryActions = field(default_factory=RecoveryActions)

    @property
    def batch_size(self) -> int:
        return len(self.qualified)


class SchedulerStalledError(RuntimeError):
    """The scheduler can make no further progress while requests remain.

    Carries a snapshot of the pending table and the protocol's
    per-request denial reasons, so a stall is diagnosable instead of a
    bare message: which requests are stuck, and why the protocol keeps
    refusing each of them.
    """

    def __init__(
        self,
        message: str,
        pending_snapshot: list[Request],
        denials: dict[int, str],
        steps_run: int = 0,
    ) -> None:
        super().__init__(message)
        self.pending_snapshot = pending_snapshot
        self.denials = denials
        self.steps_run = steps_run

    def describe(self) -> str:
        """Multi-line report: every stuck request and its denial reason."""
        lines = [str(self), f"after {self.steps_run} steps, stuck requests:"]
        for request in self.pending_snapshot:
            reason = self.denials.get(request.id, "no reason attributed")
            lines.append(f"  {request} (id={request.id}): {reason}")
        return "\n".join(lines)


def _ZERO_CLOCK() -> float:
    """Default clock: callers that never pass ``now`` see 0.0, exactly
    as before the clock seam existed."""
    return 0.0


class DeclarativeScheduler:
    """The middleware scheduler of Figure 1 (see module docstring).

    Parameters
    ----------
    protocol:
        The declarative rule set to evaluate each step.
    trigger:
        Trigger policy; defaults to a fill level of 1 (every request
        arrival makes the scheduler eligible to run).
    config, metrics:
        Optional behaviour knobs and instrumentation sink.
    recovery, admission:
        Optional abort/retry recovery and admission-control policies
        (see module docstring).
    """

    def __init__(
        self,
        protocol: Protocol,
        trigger: Optional[TriggerPolicy] = None,
        config: SchedulerConfig = SchedulerConfig(),
        metrics: Optional[MetricsCollector] = None,
        recovery: Optional[RecoveryPolicy] = None,
        admission: Optional[AdmissionPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.protocol = protocol
        self.trigger = trigger if trigger is not None else FillLevelTrigger(1)
        self.config = config
        self.metrics = metrics
        self.recovery = recovery
        self.admission = admission
        #: Supplies ``now`` when a caller passes none; defaults to a
        #: constant 0.0 (the historical time-agnostic behaviour).
        self.clock: Callable[[], float] = clock if clock is not None else _ZERO_CLOCK
        #: Called with each step's result at the very end of :meth:`step`.
        self.step_hooks: list[Callable[[SchedulerStepResult], None]] = []
        self.incoming = IncomingQueue()
        self.pending = PendingStore()
        self.history = HistoryStore()
        self.steps_run = 0
        self.total_query_seconds = 0.0
        #: Injection point for forced step exceptions: called with the
        #: step index before the step touches any state; may raise.
        self.fault_hook: Optional[Callable[[int], None]] = None
        #: Optional runtime invariant monitor.
        self.monitor: Optional[InvariantMonitor] = None
        # Recovery/admission bookkeeping (only maintained when a policy
        # needs it; the fault-free fast path skips all of it).
        self._abort_ids = itertools.count(-1, -1)
        self._pending_since: dict[int, float] = {}
        self._client_of_ta: dict[int, int] = {}
        self._priority_of_ta: dict[int, int] = {}
        self._arrival_of_ta: dict[int, float] = {}
        self._retries_of_client: dict[int, int] = {}
        self._crashed_clients: dict[int, float] = {}
        self._orphaned_at: dict[int, float] = {}

    @classmethod
    def for_spec(
        cls,
        protocol: str,
        backend: Optional[str] = None,
        trigger: Optional[TriggerPolicy] = None,
        config: SchedulerConfig = SchedulerConfig(),
        metrics: Optional[MetricsCollector] = None,
        recovery: Optional[RecoveryPolicy] = None,
        admission: Optional[AdmissionPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
        **backend_options,
    ) -> "DeclarativeScheduler":
        """Build a scheduler from registry names — the backend-agnostic
        construction path (``--protocol ss2pl --backend compiled``).

        The scheduler core never sees which engine evaluates the spec;
        it only holds the bound :class:`~repro.backends.SpecProtocol`.
        Raises ``KeyError``/``BackendError`` naming the valid choices
        for a bad protocol/backend name.
        """
        from repro.backends import build_protocol

        return cls(
            build_protocol(protocol, backend, **backend_options),
            trigger=trigger,
            config=config,
            metrics=metrics,
            recovery=recovery,
            admission=admission,
            clock=clock,
        )

    @property
    def _tracking(self) -> bool:
        """True when per-transaction bookkeeping must be maintained."""
        return self.recovery is not None or self.admission is not None

    # -- client-facing ----------------------------------------------------------

    def submit(self, request: Request, now: Optional[float] = None) -> None:
        """Buffer one request in the incoming queue (client worker path)."""
        if now is None:
            now = self.clock()
        self.incoming.enqueue(request, now)
        if self.monitor is not None:
            self.monitor.note_submitted(request, now)
        if self.metrics is not None:
            self.metrics.incr("scheduler.submitted")

    def should_run(self, now: Optional[float] = None) -> bool:
        """Evaluate the trigger condition."""
        if now is None:
            now = self.clock()
        if len(self.incoming) == 0 and len(self.pending) == 0:
            # The empty fast path must not starve recovery: an orphaned
            # transaction whose lease has expired still holds logical
            # locks in history, and only a step's recovery sweep can
            # reap it.  (Timeout aborts need no such check — their
            # clocks are armed by rows sitting in pending.)
            return self._orphan_reap_due(now)
        if self.trigger.should_fire(self.incoming, now):
            return True
        if len(self.pending) > 0:
            # Blocked requests sit in pending; a step can still free them
            # once history changes, but the re-check is paced by the
            # trigger's own clock (``next_check``), not unconditional —
            # purely fill-driven triggers stay enqueue-driven.
            next_check = self.trigger.next_check(now)
            return next_check is not None and now >= next_check
        return False

    def _orphan_reap_due(self, now: float) -> bool:
        """True when some orphan's lease has expired and a recovery
        sweep would abort it right now."""
        if self.recovery is None or not self._orphaned_at:
            return False
        lease = self.recovery.orphan_lease
        return any(
            ta in self._client_of_ta and now - orphaned_at >= lease
            for ta, orphaned_at in self._orphaned_at.items()
        )

    def next_recovery_due(self, now: Optional[float] = None) -> Optional[float]:
        """Earliest future time at which the recovery policy would act
        (a pending-age timeout expiring or an orphan lease running out),
        or None when no recovery work is armed.

        The serving layer's pacing loop uses this to schedule a wake-up:
        recovery only runs inside :meth:`step`, so a driver that stops
        submitting must still step the scheduler at these deadlines.
        """
        if self.recovery is None:
            return None
        deadlines: list[float] = []
        for ta, since in self._pending_since.items():
            client = self._client_of_ta.get(ta, 0)
            retries = self._retries_of_client.get(client, 0)
            deadlines.append(since + self.recovery.timeout_for(retries))
        for ta, orphaned_at in self._orphaned_at.items():
            if ta in self._client_of_ta:
                deadlines.append(orphaned_at + self.recovery.orphan_lease)
        if not deadlines:
            return None
        return min(deadlines)

    # -- crash notifications (recovery) -----------------------------------------

    def note_client_crashed(self, client_id: int, now: float) -> None:
        """A client connection died; its active transactions become
        orphans and are reaped once the recovery policy's lease expires.

        Orphan deadlines are per-transaction (stamped here, and at drain
        time for requests still in the incoming queue when the crash
        hit), so a client that reconnects before the lease expires does
        not resurrect its old transactions — and its *new* transactions
        are never mistaken for orphans."""
        self._crashed_clients.setdefault(client_id, now)
        for ta, client in self._client_of_ta.items():
            if client == client_id:
                self._orphaned_at.setdefault(ta, now)

    def note_client_recovered(self, client_id: int) -> None:
        """The client reconnected (fresh session; its pre-crash
        transactions stay marked as orphans — the new session cannot
        adopt them)."""
        self._crashed_clients.pop(client_id, None)
        self._retries_of_client.pop(client_id, None)

    def retries_of_client(self, client_id: int) -> int:
        return self._retries_of_client.get(client_id, 0)

    # -- the scheduler step -------------------------------------------------------

    def step(self, now: Optional[float] = None) -> SchedulerStepResult:
        """Run one full scheduler step (Figure 1 steps 1-4 up to
        dispatch; the caller sends the returned batch to its server)."""
        if now is None:
            now = self.clock()
        if self.fault_hook is not None:
            # Before any state changes: an injected failure here must
            # leave queue/stores untouched so a retried step sees the
            # exact pre-fault state.
            self.fault_hook(self.steps_run)
        drained_requests = self.incoming.drain()
        self.pending.insert_batch(drained_requests)
        if self._tracking:
            for request in drained_requests:
                client = request.attrs.client_id
                self._client_of_ta.setdefault(request.ta, client)
                self._arrival_of_ta.setdefault(request.ta, now)
                self._priority_of_ta.setdefault(request.ta, request.attrs.priority)
                if client in self._crashed_clients:
                    # The crash raced the incoming queue: this request
                    # was already in flight when its client died.
                    self._orphaned_at.setdefault(
                        request.ta, self._crashed_clients[client]
                    )
        recovery_actions = RecoveryActions()
        if self.admission is not None:
            self._shed_overload(now, recovery_actions)
        pending_before = len(self.pending)
        history_rows = len(self.history)

        if pending_before == 0:
            # Nothing to schedule: skip the protocol query entirely (and
            # charge no query_seconds) — an empty pending table always
            # yields an empty batch.
            decision = ProtocolDecision()
            query_seconds = 0.0
        else:
            started = time.perf_counter()
            decision = self.protocol.schedule(
                self.pending.table, self.history.table
            )
            query_seconds = time.perf_counter() - started

        qualified = [self.pending.rehydrate(r) for r in decision.qualified]
        if self.config.max_batch is not None:
            qualified = qualified[: self.config.max_batch]
        self.pending.remove(qualified)
        self.history.record_batch(qualified)
        self.protocol.observe_executed(qualified)
        if self.config.prune_history:
            pruned = self.history.finished_transactions
            self.history.prune_finished()
            if pruned:
                self.protocol.observe_pruned(pruned)

        self.steps_run += 1
        self.total_query_seconds += query_seconds
        self.trigger.notify_fired(now)

        if self._tracking:
            self._note_progress(qualified, now)
        result = SchedulerStepResult(
            now=now,
            drained=len(drained_requests),
            pending_before=pending_before,
            pending_after=len(self.pending),
            history_rows=history_rows,
            qualified=qualified,
            query_seconds=query_seconds,
            denials=dict(decision.denials),
            recovery=recovery_actions,
        )
        if self.monitor is not None:
            # Check (and record dispatches into the violation trace)
            # before the recovery sweep, so the monitor's trace lists a
            # step's grants before its recovery aborts — the same order
            # drivers write their own dispatch logs in.
            self.monitor.after_step(self, result, now)
        if self.recovery is not None:
            self._recover(now, recovery_actions)
        if self.metrics is not None:
            self.metrics.incr("scheduler.steps")
            self.metrics.incr("scheduler.qualified", len(qualified))
            self.metrics.timer("scheduler.query").add(query_seconds)
            self.metrics.gauge("scheduler.pending", len(self.pending))
            self.metrics.gauge("scheduler.history", len(self.history))
            if recovery_actions.timeouts:
                self.metrics.incr(
                    "scheduler.timeout_aborts", len(recovery_actions.timeouts)
                )
            if recovery_actions.orphans:
                self.metrics.incr(
                    "scheduler.orphan_reaps", len(recovery_actions.orphans)
                )
            if recovery_actions.sheds:
                self.metrics.incr(
                    "scheduler.sheds", len(recovery_actions.sheds)
                )
            if pending_before:
                # Only when the protocol query actually ran: on the
                # empty-pending fast path the evaluator's last-step
                # snapshot is stale and would double-count.
                stats_fn = getattr(self.protocol, "maintenance_stats", None)
                stats = stats_fn() if callable(stats_fn) else None
                if stats:
                    self.metrics.record_maintenance(
                        stats, prefix="scheduler.delta"
                    )

        for hook in self.step_hooks:
            hook(result)
        return result

    # -- recovery internals ------------------------------------------------------

    def _note_progress(self, qualified: list[Request], now: float) -> None:
        """Update per-transaction timers/bookkeeping after a dispatch."""
        for request in qualified:
            self._pending_since.pop(request.ta, None)
            if request.operation.is_termination:
                client = self._client_of_ta.pop(request.ta, None)
                self._arrival_of_ta.pop(request.ta, None)
                self._priority_of_ta.pop(request.ta, None)
                if request.is_commit and client is not None:
                    # A commit ends the retry episode: the client's next
                    # transaction starts with a fresh timeout.
                    self._retries_of_client.pop(client, None)
        # Arm/refresh the pending clock of every transaction that still
        # has work sitting in the table (newly drained or just blocked
        # again after progress).
        if len(self.pending):
            ta_pos = self.pending.table.schema.resolve("ta")
            for row in self.pending.table.rows:
                self._pending_since.setdefault(row[ta_pos], now)

    def _recover(self, now: float, actions: RecoveryActions) -> None:
        """Timeout aborts (with per-client backoff) and orphan reaping."""
        policy = self.recovery
        for ta, since in list(self._pending_since.items()):
            client = self._client_of_ta.get(ta, 0)
            timeout = policy.timeout_for(self._retries_of_client.get(client, 0))
            if now - since > timeout:
                abort = self.abort_transaction(ta, now, reason="timeout")
                self._retries_of_client[client] = (
                    self._retries_of_client.get(client, 0) + 1
                )
                actions.timeouts.append((ta, abort))
        for ta, orphaned_at in list(self._orphaned_at.items()):
            if ta not in self._client_of_ta:
                # Finished (or already aborted) before the lease expired.
                self._orphaned_at.pop(ta)
                continue
            if now - orphaned_at >= policy.orphan_lease:
                self._orphaned_at.pop(ta)
                abort = self.abort_transaction(ta, now, reason="orphan")
                actions.orphans.append((ta, abort))

    def _shed_overload(self, now: float, actions: RecoveryActions) -> None:
        """Bounded pending table: shed whole transactions on overload."""
        total_rows = len(self.pending)
        if total_rows <= self.admission.max_pending:
            return
        ta_pos = self.pending.table.schema.resolve("ta")
        rows_by_ta: dict[int, int] = {}
        for row in self.pending.table.rows:
            ta = row[ta_pos]
            rows_by_ta[ta] = rows_by_ta.get(ta, 0) + 1
        retries_of_ta = {
            ta: self._retries_of_client.get(client, 0)
            for ta, client in self._client_of_ta.items()
        }
        victims = self.admission.choose_victims(
            rows_by_ta,
            self._priority_of_ta,
            retries_of_ta,
            self._arrival_of_ta,
            total_rows,
        )
        for ta in victims:
            abort = self.abort_transaction(ta, now, reason="shed", kind="shed")
            actions.sheds.append((ta, abort))

    def abort_transaction(
        self, ta: int, now: float = 0.0, reason: str = "abort", kind: str = "aborted"
    ) -> Request:
        """First-class abort: remove the transaction's pending rows and
        synthesize an ``a`` request into history, releasing its logical
        locks.  Returns the synthesized abort request (negative id —
        scheduler-originated, never colliding with workload ids)."""
        ta_pos = self.pending.table.schema.resolve("ta")
        id_pos = self.pending.table.schema.resolve("id")
        doomed_ids = [
            row[id_pos]
            for row in self.pending.table.rows
            if row[ta_pos] == ta
        ]
        if doomed_ids:
            self.pending.table.delete_where(lambda row: row[ta_pos] == ta)
            for request_id in doomed_ids:
                self.pending.table.attrs_by_id.pop(request_id, None)
        abort = Request(
            id=next(self._abort_ids),
            ta=ta,
            intrata=0,
            operation=Operation.ABORT,
            obj=NO_OBJECT,
        )
        self.history.record_batch([abort])
        self.protocol.observe_executed([abort])
        if self.config.prune_history:
            pruned = self.history.finished_transactions
            self.history.prune_finished()
            if pruned:
                self.protocol.observe_pruned(pruned)
        self._pending_since.pop(ta, None)
        self._client_of_ta.pop(ta, None)
        self._arrival_of_ta.pop(ta, None)
        self._priority_of_ta.pop(ta, None)
        if self.monitor is not None:
            self.monitor.note_terminal(doomed_ids, kind, now)
            self.monitor.note_dispatch(now, abort)
        if self.metrics is not None:
            self.metrics.incr(f"scheduler.abort.{reason}")
        return abort

    # -- convenience -----------------------------------------------------------------

    def run_until_drained(
        self,
        max_steps: int = 10_000,
        on_batch: Optional[Callable[[SchedulerStepResult], None]] = None,
    ) -> list[SchedulerStepResult]:
        """Step repeatedly until no pending/incoming requests remain.

        Raises :class:`SchedulerStalledError` when a step makes no
        progress while requests remain (a protocol that permanently
        denies something — e.g. conflicting requests whose blocker
        never terminates), carrying the pending snapshot and the
        per-request denial reasons."""
        results: list[SchedulerStepResult] = []
        for __ in range(max_steps):
            if len(self.incoming) == 0 and len(self.pending) == 0:
                return results
            result = self.step(now=float(len(results)))
            results.append(result)
            if on_batch is not None:
                on_batch(result)
            if (
                result.batch_size == 0
                and result.drained == 0
                and not result.recovery
            ):
                raise SchedulerStalledError(
                    f"scheduler stalled with {len(self.pending)} pending "
                    f"requests; protocol {self.protocol.name} denies: "
                    f"{result.denials or 'unattributed'}",
                    pending_snapshot=self._pending_snapshot(),
                    denials=dict(result.denials),
                    steps_run=self.steps_run,
                )
        raise SchedulerStalledError(
            f"not drained after {max_steps} steps",
            pending_snapshot=self._pending_snapshot(),
            denials=dict(results[-1].denials) if results else {},
            steps_run=self.steps_run,
        )

    def _pending_snapshot(self) -> list[Request]:
        """Re-hydrated copies of every request stuck in the pending table."""
        return [
            self.pending.rehydrate(Request.from_row(row))
            for row in self.pending.table.rows
        ]
