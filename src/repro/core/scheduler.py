"""The declarative scheduler component.

:class:`DeclarativeScheduler` wires together the pieces of the paper's
Figure 1: incoming queue → pending/history stores → protocol query →
batch dispatch.  It is synchronous and time-agnostic — callers supply
``now`` — so the same object serves unit tests (manual stepping), the
virtual-time middleware simulation, and wall-clock measurement of the
declarative overhead (E5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.queue import IncomingQueue
from repro.core.stores import HistoryStore, PendingStore
from repro.core.triggers import FillLevelTrigger, TriggerPolicy
from repro.metrics.collector import MetricsCollector
from repro.model.request import Request
from repro.protocols.base import Protocol, ProtocolDecision


@dataclass(frozen=True, slots=True)
class SchedulerCostModel:
    """Virtual-time model of one scheduler step's own cost.

    Fitted to wall-clock measurements of the relalg backend (the E5
    bench measures the real thing; these constants let the virtual-time
    middleware simulation charge a deterministic, host-independent cost):
    a fixed dispatch overhead plus a per-row term over the scanned
    pending+history rows.
    """

    fixed_cost: float = 2.0e-3
    per_row_cost: float = 8.0e-6

    def step_cost(self, pending_rows: int, history_rows: int) -> float:
        return self.fixed_cost + self.per_row_cost * (pending_rows + history_rows)


@dataclass(frozen=True, slots=True)
class SchedulerConfig:
    """Knobs of the scheduler component.

    ``prune_history`` keeps only requests of active transactions in the
    history store (the paper stores "all *relevant* prior executed
    requests"); disabling it is the history-pruning ablation.
    """

    prune_history: bool = True
    max_batch: Optional[int] = None


@dataclass
class SchedulerStepResult:
    """Telemetry of one scheduler step."""

    now: float
    drained: int
    pending_before: int
    pending_after: int
    history_rows: int
    qualified: list[Request] = field(default_factory=list)
    query_seconds: float = 0.0
    denials: dict[int, str] = field(default_factory=dict)

    @property
    def batch_size(self) -> int:
        return len(self.qualified)


class DeclarativeScheduler:
    """The middleware scheduler of Figure 1 (see module docstring).

    Parameters
    ----------
    protocol:
        The declarative rule set to evaluate each step.
    trigger:
        Trigger policy; defaults to a fill level of 1 (every request
        arrival makes the scheduler eligible to run).
    config, metrics:
        Optional behaviour knobs and instrumentation sink.
    """

    def __init__(
        self,
        protocol: Protocol,
        trigger: Optional[TriggerPolicy] = None,
        config: SchedulerConfig = SchedulerConfig(),
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        self.protocol = protocol
        self.trigger = trigger if trigger is not None else FillLevelTrigger(1)
        self.config = config
        self.metrics = metrics
        self.incoming = IncomingQueue()
        self.pending = PendingStore()
        self.history = HistoryStore()
        self.steps_run = 0
        self.total_query_seconds = 0.0

    @classmethod
    def for_spec(
        cls,
        protocol: str,
        backend: Optional[str] = None,
        trigger: Optional[TriggerPolicy] = None,
        config: SchedulerConfig = SchedulerConfig(),
        metrics: Optional[MetricsCollector] = None,
        **backend_options,
    ) -> "DeclarativeScheduler":
        """Build a scheduler from registry names — the backend-agnostic
        construction path (``--protocol ss2pl --backend compiled``).

        The scheduler core never sees which engine evaluates the spec;
        it only holds the bound :class:`~repro.backends.SpecProtocol`.
        Raises ``KeyError``/``BackendError`` naming the valid choices
        for a bad protocol/backend name.
        """
        from repro.backends import build_protocol

        return cls(
            build_protocol(protocol, backend, **backend_options),
            trigger=trigger,
            config=config,
            metrics=metrics,
        )

    # -- client-facing ----------------------------------------------------------

    def submit(self, request: Request, now: float = 0.0) -> None:
        """Buffer one request in the incoming queue (client worker path)."""
        self.incoming.enqueue(request, now)
        if self.metrics is not None:
            self.metrics.incr("scheduler.submitted")

    def should_run(self, now: float) -> bool:
        """Evaluate the trigger condition."""
        if len(self.incoming) == 0 and len(self.pending) == 0:
            return False
        if self.trigger.should_fire(self.incoming, now):
            return True
        if len(self.pending) > 0:
            # Blocked requests sit in pending; a step can still free them
            # once history changes, but the re-check is paced by the
            # trigger's own clock (``next_check``), not unconditional —
            # purely fill-driven triggers stay enqueue-driven.
            next_check = self.trigger.next_check(now)
            return next_check is not None and now >= next_check
        return False

    # -- the scheduler step -------------------------------------------------------

    def step(self, now: float = 0.0) -> SchedulerStepResult:
        """Run one full scheduler step (Figure 1 steps 1-4 up to
        dispatch; the caller sends the returned batch to its server)."""
        drained_requests = self.incoming.drain()
        self.pending.insert_batch(drained_requests)
        pending_before = len(self.pending)
        history_rows = len(self.history)

        if pending_before == 0:
            # Nothing to schedule: skip the protocol query entirely (and
            # charge no query_seconds) — an empty pending table always
            # yields an empty batch.
            decision = ProtocolDecision()
            query_seconds = 0.0
        else:
            started = time.perf_counter()
            decision = self.protocol.schedule(
                self.pending.table, self.history.table
            )
            query_seconds = time.perf_counter() - started

        qualified = [self.pending.rehydrate(r) for r in decision.qualified]
        if self.config.max_batch is not None:
            qualified = qualified[: self.config.max_batch]
        self.pending.remove(qualified)
        self.history.record_batch(qualified)
        self.protocol.observe_executed(qualified)
        if self.config.prune_history:
            pruned = self.history.finished_transactions
            self.history.prune_finished()
            if pruned:
                self.protocol.observe_pruned(pruned)

        self.steps_run += 1
        self.total_query_seconds += query_seconds
        self.trigger.notify_fired(now)
        if self.metrics is not None:
            self.metrics.incr("scheduler.steps")
            self.metrics.incr("scheduler.qualified", len(qualified))
            self.metrics.timer("scheduler.query").add(query_seconds)
            self.metrics.gauge("scheduler.pending", len(self.pending))
            self.metrics.gauge("scheduler.history", len(self.history))

        return SchedulerStepResult(
            now=now,
            drained=len(drained_requests),
            pending_before=pending_before,
            pending_after=len(self.pending),
            history_rows=history_rows,
            qualified=qualified,
            query_seconds=query_seconds,
            denials=dict(decision.denials),
        )

    # -- convenience -----------------------------------------------------------------

    def run_until_drained(
        self,
        max_steps: int = 10_000,
        on_batch: Optional[Callable[[SchedulerStepResult], None]] = None,
    ) -> list[SchedulerStepResult]:
        """Step repeatedly until no pending/incoming requests remain.

        Raises RuntimeError when a step makes no progress while requests
        remain (a protocol that permanently denies something — e.g.
        conflicting requests whose blocker never terminates)."""
        results: list[SchedulerStepResult] = []
        for __ in range(max_steps):
            if len(self.incoming) == 0 and len(self.pending) == 0:
                return results
            result = self.step(now=float(len(results)))
            results.append(result)
            if on_batch is not None:
                on_batch(result)
            if result.batch_size == 0 and result.drained == 0:
                raise RuntimeError(
                    f"scheduler stalled with {len(self.pending)} pending "
                    f"requests; protocol {self.protocol.name} denies: "
                    f"{result.denials or 'unattributed'}"
                )
        raise RuntimeError(f"not drained after {max_steps} steps")
