"""Pending-request and history stores on relational tables.

Both stores use the paper's Table 2 schema.  Because the Table 2 row
carries only scheduling-relevant columns, the stores keep the request
side-car attributes (client, SLA class, deadline) in an ``attrs_by_id``
map exposed on the table object, so SLA protocols can re-hydrate
qualified rows into full :class:`~repro.model.request.Request` objects.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.model.request import Request, RequestAttributes, TransactionStatus
from repro.relalg.table import Table

#: The paper's Table 2 columns.
REQUEST_COLUMNS = ("id", "ta", "intrata", "operation", "object")


def _new_table(name: str) -> Table:
    table = Table(name, list(REQUEST_COLUMNS))
    table.attrs_by_id = {}  # type: ignore[attr-defined]
    return table


class PendingStore:
    """The pending-request database."""

    def __init__(self) -> None:
        self.table = _new_table("requests")
        self.table.create_index("ta")
        # Listing 1's intra-batch self-join keys on object; the compiled
        # plan (repro.relalg.plan) probes this index directly instead of
        # rebuilding a hash table per scheduler step.
        self.table.create_index("object")

    def insert_batch(self, requests: Iterable[Request]) -> int:
        count = 0
        for request in requests:
            self.table.insert(request.as_row())
            self.table.attrs_by_id[request.id] = request.attrs
            count += 1
        return count

    def remove(self, requests: Iterable[Request]) -> int:
        rows = [r.as_row() for r in requests]
        removed = self.table.delete_rows(rows)
        for request in requests:
            self.table.attrs_by_id.pop(request.id, None)
        return removed

    def attrs_of(self, request_id: int) -> RequestAttributes:
        return self.table.attrs_by_id.get(request_id, RequestAttributes())

    def rehydrate(self, request: Request) -> Request:
        """Re-attach side-car attributes to a request reconstructed from
        a Table 2 row."""
        attrs = self.table.attrs_by_id.get(request.id)
        if attrs is None:
            return request
        import dataclasses

        return dataclasses.replace(request, attrs=attrs)

    def __len__(self) -> int:
        return len(self.table)


class HistoryStore:
    """The history database of relevant prior executed requests.

    Tracks transaction status incrementally so pruning (dropping rows of
    finished transactions — the paper keeps only "relevant" requests)
    is a single pass.
    """

    def __init__(self) -> None:
        self.table = _new_table("history")
        self.table.create_index("ta")
        self.table.create_index("object")
        self._status: dict[int, TransactionStatus] = {}
        self.total_recorded = 0

    def record_batch(self, requests: Iterable[Request]) -> int:
        count = 0
        for request in requests:
            self.table.insert(request.as_row())
            self.table.attrs_by_id[request.id] = request.attrs
            self._status.setdefault(request.ta, TransactionStatus.ACTIVE)
            if request.is_commit:
                self._status[request.ta] = TransactionStatus.COMMITTED
            elif request.is_abort:
                self._status[request.ta] = TransactionStatus.ABORTED
            count += 1
        self.total_recorded += count
        return count

    def status(self, ta: int) -> TransactionStatus:
        return self._status.get(ta, TransactionStatus.ACTIVE)

    @property
    def active_transactions(self) -> set[int]:
        return {
            ta
            for ta, status in self._status.items()
            if status is TransactionStatus.ACTIVE
        }

    @property
    def finished_transactions(self) -> set[int]:
        """Committed/aborted transactions not yet pruned."""
        return {
            ta
            for ta, status in self._status.items()
            if status is not TransactionStatus.ACTIVE
        }

    def prune_finished(self) -> int:
        """Drop rows of committed/aborted transactions."""
        finished = {
            ta
            for ta, status in self._status.items()
            if status is not TransactionStatus.ACTIVE
        }
        if not finished:
            return 0
        ta_pos = self.table.schema.resolve("ta")
        id_pos = self.table.schema.resolve("id")
        doomed_ids = [
            row[id_pos] for row in self.table.rows if row[ta_pos] in finished
        ]
        removed = self.table.delete_where(lambda row: row[ta_pos] in finished)
        for request_id in doomed_ids:
            self.table.attrs_by_id.pop(request_id, None)
        for ta in finished:
            del self._status[ta]
        return removed

    def __len__(self) -> int:
        return len(self.table)
