"""Non-scheduling passthrough mode.

Paper Section 3.3: "To be able to measure the real declarative
scheduling overhead, we will design the scheduler to be able to run in
a non-scheduling mode.  In this mode, the scheduler forwards the
requests to the server without scheduling."  The passthrough scheduler
shares the :class:`~repro.core.scheduler.DeclarativeScheduler` step
interface so harnesses can swap it in without code changes.
"""

from __future__ import annotations

from typing import Optional

from repro.core.queue import IncomingQueue
from repro.core.scheduler import SchedulerStepResult
from repro.metrics.collector import MetricsCollector
from repro.model.request import Request


class PassthroughScheduler:
    """Forwards every buffered request immediately, in arrival order."""

    def __init__(self, metrics: Optional[MetricsCollector] = None) -> None:
        self.incoming = IncomingQueue()
        self.metrics = metrics
        self.steps_run = 0
        self.total_query_seconds = 0.0

    def submit(self, request: Request, now: float = 0.0) -> None:
        self.incoming.enqueue(request, now)

    def should_run(self, now: float) -> bool:
        return len(self.incoming) > 0

    def step(self, now: float = 0.0) -> SchedulerStepResult:
        batch = self.incoming.drain()
        self.steps_run += 1
        if self.metrics is not None:
            self.metrics.incr("scheduler.steps")
            self.metrics.incr("scheduler.qualified", len(batch))
        return SchedulerStepResult(
            now=now,
            drained=len(batch),
            pending_before=len(batch),
            pending_after=0,
            history_rows=0,
            qualified=batch,
            query_seconds=0.0,
        )
