"""The declarative middleware scheduler — the paper's Figure 1.

Clients connect to the scheduler, not the server.  Incoming requests
are buffered in an **incoming queue**; a configurable **trigger**
(Section 3.3: "a lapse of time, a certain fill level of the incoming
queue or a hybrid version") periodically fires a scheduler step that

1. empties the incoming queue into the **pending-request table** as a
   batch job,
2. runs the configured declarative **protocol** over the pending and
   **history** tables,
3. moves qualified requests from pending to history, and
4. dispatches them to the **server** as a batch, routing results back.

A **non-scheduling passthrough mode** forwards requests unscheduled so
the pure declarative-scheduling overhead is measurable, exactly as the
paper plans (Section 3.3, last paragraph).
"""

from repro.core.queue import IncomingQueue
from repro.core.stores import HistoryStore, PendingStore, REQUEST_COLUMNS
from repro.core.triggers import (
    FillLevelTrigger,
    HybridTrigger,
    TimeLapseTrigger,
    TriggerPolicy,
)
from repro.core.scheduler import (
    DeclarativeScheduler,
    SchedulerConfig,
    SchedulerCostModel,
    SchedulerStepResult,
)
from repro.core.simulation import MiddlewareSimulation, MiddlewareResult
from repro.core.passthrough import PassthroughScheduler

__all__ = [
    "IncomingQueue",
    "PendingStore",
    "HistoryStore",
    "REQUEST_COLUMNS",
    "TriggerPolicy",
    "TimeLapseTrigger",
    "FillLevelTrigger",
    "HybridTrigger",
    "DeclarativeScheduler",
    "SchedulerConfig",
    "SchedulerCostModel",
    "SchedulerStepResult",
    "MiddlewareSimulation",
    "MiddlewareResult",
    "PassthroughScheduler",
]
