"""Scheduler trigger policies.

Paper Section 3.3: "Periodically, the scheduler gets triggered ...  The
trigger condition can be configured (dynamically).  The best condition
has to be evaluated experimentally.  Possible conditions are, e.g. a
lapse of time, a certain fill level of the incoming queue or a hybrid
version."  All three are implemented here; benchmark E7 runs the
evaluation the paper defers.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.core.queue import IncomingQueue


class TriggerPolicy(abc.ABC):
    """Decides, given queue state and the clock, whether to run a step."""

    name: str = "abstract"

    @abc.abstractmethod
    def should_fire(self, queue: IncomingQueue, now: float) -> bool:
        """True when the scheduler should run a step now."""

    @abc.abstractmethod
    def next_check(self, now: float) -> Optional[float]:
        """Earliest future time worth re-evaluating at, or None when the
        policy is purely event-driven (fires on enqueue checks only)."""

    def notify_fired(self, now: float) -> None:
        """Hook invoked after a scheduler step ran."""


class TimeLapseTrigger(TriggerPolicy):
    """Fire every *interval* seconds (if anything is queued)."""

    def __init__(self, interval: float) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._last_fire = 0.0
        self.name = f"time({interval:g}s)"

    def should_fire(self, queue: IncomingQueue, now: float) -> bool:
        return len(queue) > 0 and now - self._last_fire >= self.interval

    def next_check(self, now: float) -> Optional[float]:
        return self._last_fire + self.interval

    def notify_fired(self, now: float) -> None:
        self._last_fire = now


class FillLevelTrigger(TriggerPolicy):
    """Fire when the incoming queue reaches *threshold* requests."""

    def __init__(self, threshold: int) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.name = f"fill({threshold})"

    def should_fire(self, queue: IncomingQueue, now: float) -> bool:
        return len(queue) >= self.threshold

    def next_check(self, now: float) -> Optional[float]:
        return None  # purely enqueue-driven


class HybridTrigger(TriggerPolicy):
    """Fire on fill level, but at the latest after a time lapse —
    batching efficiency under load, bounded latency when idle."""

    def __init__(self, interval: float, threshold: int) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.interval = interval
        self.threshold = threshold
        self._last_fire = 0.0
        self.name = f"hybrid({interval:g}s|{threshold})"

    def should_fire(self, queue: IncomingQueue, now: float) -> bool:
        if not len(queue):
            return False
        if len(queue) >= self.threshold:
            return True
        return now - self._last_fire >= self.interval

    def next_check(self, now: float) -> Optional[float]:
        return self._last_fire + self.interval

    def notify_fired(self, now: float) -> None:
        self._last_fire = now
