"""Closed-loop virtual-time simulation of the full middleware stack.

This is the multi-user test bed the paper plans for its evaluation
(Section 3.4): N clients connect to the declarative scheduler, each
submitting one request at a time and waiting for its result; the
scheduler batches, runs its protocol, and dispatches qualified batches
to a :class:`~repro.server.engine.BatchServer` whose own scheduling is
bypassed.  Time is virtual (deterministic); the scheduler's own query
cost is charged via :class:`~repro.core.scheduler.SchedulerCostModel`.

Because a blocked request just stays in the pending table, two
transactions can block each other (the set-at-a-time analogue of a
deadlock).  The paper's Listing 1 does not address this; the middleware
resolves it with a timeout: a transaction whose request has been
pending longer than ``deadlock_timeout`` is aborted (an ``a`` request
is synthesized into history, releasing its locks) and its client starts
a fresh transaction.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.core.scheduler import (
    DeclarativeScheduler,
    SchedulerConfig,
    SchedulerCostModel,
)
from repro.core.triggers import TriggerPolicy
from repro.model.request import (
    NO_OBJECT,
    Operation,
    Request,
    RequestAttributes,
)
from repro.protocols.base import Protocol
from repro.server.costmodel import CostModel, PAPER_CALIBRATION
from repro.server.engine import BatchServer
from repro.sim.simulator import Simulator
from repro.workload.generator import TransactionFactory
from repro.workload.spec import WorkloadSpec
from repro.workload.traces import Trace


@dataclass
class MiddlewareResult:
    """Outcome of one closed-loop middleware run."""

    clients: int
    duration: float
    completed_statements: int = 0
    committed_transactions: int = 0
    timeout_aborts: int = 0
    scheduler_runs: int = 0
    scheduler_cost: float = 0.0
    server_busy: float = 0.0
    batch_sizes: list[int] = field(default_factory=list)
    #: Per-SLA-class response-time samples (seconds).
    response_times: dict[str, list[float]] = field(default_factory=dict)
    #: Dispatched-request log (dispatch order), when recording was on.
    trace: Optional["Trace"] = None

    @property
    def throughput(self) -> float:
        return self.completed_statements / self.duration if self.duration else 0.0

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    def mean_response(self, sla_class: Optional[str] = None) -> float:
        if sla_class is None:
            samples = [s for v in self.response_times.values() for s in v]
        else:
            samples = self.response_times.get(sla_class, [])
        return sum(samples) / len(samples) if samples else 0.0


class _SimClient:
    """One closed-loop client: transaction iterator + outstanding state."""

    __slots__ = ("index", "factory", "attrs", "ta", "statements", "position")

    def __init__(self, index: int, factory: TransactionFactory, attrs) -> None:
        self.index = index
        self.factory = factory
        self.attrs = attrs
        self.ta = -1
        self.statements = []
        self.position = 0


class MiddlewareSimulation:
    """Virtual-time closed-loop run of clients → scheduler → server."""

    def __init__(
        self,
        protocol: Protocol,
        trigger: TriggerPolicy,
        spec: WorkloadSpec,
        clients: int,
        seed: int = 0,
        cost_model: CostModel = PAPER_CALIBRATION,
        scheduler_cost: SchedulerCostModel = SchedulerCostModel(),
        deadlock_timeout: float = 0.5,
        attrs_for_client=None,
        scheduler_config: SchedulerConfig = SchedulerConfig(),
        record_trace: bool = False,
        start_delay_for_client=None,
    ) -> None:
        if clients <= 0:
            raise ValueError("clients must be positive")
        self.protocol = protocol
        self.trigger = trigger
        self.spec = spec
        self.clients = clients
        self.seed = seed
        self.cost_model = cost_model
        self.scheduler_cost = scheduler_cost
        self.deadlock_timeout = deadlock_timeout
        self.attrs_for_client = attrs_for_client
        self.scheduler_config = scheduler_config
        self.record_trace = record_trace
        #: Optional ``client_index -> virtual start time`` map for open
        #: arrival patterns (bursty waves, ramp-ups); default all at 0.
        self.start_delay_for_client = start_delay_for_client

    def run(self, duration: float) -> MiddlewareResult:
        sim = Simulator()
        rng = random.Random(self.seed)
        scheduler = DeclarativeScheduler(
            self.protocol, trigger=self.trigger, config=self.scheduler_config
        )
        server = BatchServer(self.cost_model)
        result = MiddlewareResult(clients=self.clients, duration=duration)
        if self.record_trace:
            result.trace = Trace()
        ta_counter = itertools.count(1)
        id_counter = itertools.count(1)
        submit_times: dict[int, float] = {}
        first_pending_since: dict[int, float] = {}  # ta -> first submit time
        client_of_ta: dict[int, _SimClient] = {}
        end = duration

        clients = []
        for index in range(self.clients):
            attrs = (
                self.attrs_for_client(index)
                if self.attrs_for_client is not None
                else RequestAttributes(client_id=index)
            )
            factory = TransactionFactory(
                self.spec, random.Random(rng.randrange(2**63))
            )
            clients.append(_SimClient(index, factory, attrs))

        def begin_transaction(client: _SimClient) -> None:
            client.ta = next(ta_counter)
            client.statements = client.factory.next_profile()
            client.position = 0
            client_of_ta[client.ta] = client
            submit_next(client)

        def submit_next(client: _SimClient) -> None:
            if sim.now >= end:
                return
            if client.position < len(client.statements):
                stmt = client.statements[client.position]
                request = Request(
                    id=next(id_counter),
                    ta=client.ta,
                    intrata=client.position,
                    operation=stmt.operation,
                    obj=stmt.obj,
                    attrs=client.attrs,
                )
            else:
                request = Request(
                    id=next(id_counter),
                    ta=client.ta,
                    intrata=client.position,
                    operation=Operation.COMMIT,
                    obj=NO_OBJECT,
                    attrs=client.attrs,
                )
            scheduler.submit(request, sim.now)
            submit_times[request.id] = sim.now
            first_pending_since.setdefault(client.ta, sim.now)
            arm_trigger()

        step_event = None
        step_event_time = float("inf")

        def schedule_step_at(at_time: float) -> None:
            """Schedule (or pull earlier) the next scheduler step."""
            nonlocal step_event, step_event_time
            at_time = max(at_time, sim.now)
            if at_time > end:
                return
            if step_event is not None and step_event_time <= at_time:
                return
            if step_event is not None:
                sim.cancel(step_event)
            step_event_time = at_time
            step_event = sim.schedule_at(at_time, run_step)

        def arm_trigger() -> None:
            if sim.now >= end:
                return
            if self.trigger.should_fire(scheduler.incoming, sim.now):
                schedule_step_at(sim.now)
                return
            next_check = self.trigger.next_check(sim.now)
            if next_check is not None:
                schedule_step_at(next_check)
            elif len(scheduler.incoming):
                # Purely fill-driven triggers can starve when fewer than
                # `threshold` clients remain unblocked; a watchdog step
                # after the deadlock timeout bounds that starvation
                # (and lets timed-out transactions be aborted).
                schedule_step_at(sim.now + self.deadlock_timeout)

        def run_step() -> None:
            nonlocal step_event, step_event_time
            step_event = None
            step_event_time = float("inf")
            if sim.now >= end:
                return
            step = scheduler.step(sim.now)
            result.scheduler_runs += 1
            cost = self.scheduler_cost.step_cost(
                step.pending_before, step.history_rows
            )
            result.scheduler_cost += cost
            batch = step.qualified
            if batch:
                if result.trace is not None:
                    for request in batch:
                        result.trace.record(sim.now, request)
                result.batch_sizes.append(len(batch))
                service = server.execute_batch(batch)
                result.server_busy += service
                # Statements within a batch execute sequentially on the
                # server; each request's result returns as it completes,
                # so batch *order* (SLA protocols) affects latency.
                offset = sim.now + cost + self.cost_model.batch_fixed_cost
                for request in batch:
                    if request.operation.is_data_access:
                        offset += self.cost_model.statement_cost
                    if offset <= end:
                        sim.schedule_at(
                            offset, lambda r=request: request_done(r)
                        )
            handle_timeouts()
            if len(scheduler.pending) or len(scheduler.incoming):
                if batch:
                    # Progress was made: continue at the trigger's pace.
                    arm_trigger()
                else:
                    # No progress: the blocked requests need a commit that
                    # is still in flight (its batch completion will re-arm
                    # us).  Time-based triggers pace the re-check on their
                    # own ``next_check`` schedule — that is what makes the
                    # E7 trigger ablation differentiate policies — capped
                    # at one deadlock timeout so deadlocked transactions
                    # still get aborted; enqueue-driven triggers fall back
                    # to the timeout slice.
                    next_check = self.trigger.next_check(sim.now)
                    if next_check is not None and next_check > sim.now:
                        schedule_step_at(
                            min(next_check, sim.now + self.deadlock_timeout)
                        )
                    else:
                        delay = max(self.deadlock_timeout / 4, 1e-4)
                        schedule_step_at(sim.now + delay)

        def request_done(request: Request) -> None:
            started = submit_times.pop(request.id, None)
            if started is not None:
                samples = result.response_times.setdefault(
                    request.attrs.sla_class, []
                )
                samples.append(sim.now - started)
            if request.operation.is_data_access:
                result.completed_statements += 1
            client = client_of_ta.get(request.ta)
            if client is None:
                return
            first_pending_since.pop(request.ta, None)
            if request.operation is Operation.COMMIT:
                result.committed_transactions += 1
                del client_of_ta[request.ta]
                begin_transaction(client)
            else:
                client.position += 1
                submit_next(client)

        def handle_timeouts() -> None:
            doomed: list[int] = []
            for ta, since in first_pending_since.items():
                if sim.now - since > self.deadlock_timeout:
                    doomed.append(ta)
            for ta in doomed:
                abort_transaction(ta)

        def abort_transaction(ta: int) -> None:
            client = client_of_ta.pop(ta, None)
            first_pending_since.pop(ta, None)
            # Remove the transaction's pending request(s) and record an
            # abort so held (logical) locks are released.
            ta_pos = scheduler.pending.table.schema.resolve("ta")
            id_pos = scheduler.pending.table.schema.resolve("id")
            doomed_ids = [
                row[id_pos]
                for row in scheduler.pending.table.rows
                if row[ta_pos] == ta
            ]
            scheduler.pending.table.delete_where(lambda row: row[ta_pos] == ta)
            for request_id in doomed_ids:
                submit_times.pop(request_id, None)
                scheduler.pending.table.attrs_by_id.pop(request_id, None)
            abort = Request(
                id=next(id_counter),
                ta=ta,
                intrata=0,
                operation=Operation.ABORT,
                obj=NO_OBJECT,
            )
            scheduler.history.record_batch([abort])
            scheduler.protocol.observe_executed([abort])
            if scheduler.config.prune_history:
                pruned = scheduler.history.finished_transactions
                scheduler.history.prune_finished()
                if pruned:
                    scheduler.protocol.observe_pruned(pruned)
            if result.trace is not None:
                result.trace.record(sim.now, abort)
            result.timeout_aborts += 1
            if client is not None and sim.now < end:
                sim.schedule(
                    self.cost_model.restart_delay,
                    lambda c=client: begin_transaction(c),
                )

        for client in clients:
            delay = (
                float(self.start_delay_for_client(client.index))
                if self.start_delay_for_client is not None
                else 0.0
            )
            if delay > 0.0:
                sim.schedule(delay, lambda c=client: begin_transaction(c))
            else:
                begin_transaction(client)
        sim.run_until(end)
        return result
