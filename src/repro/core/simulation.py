"""Closed-loop virtual-time simulation of the full middleware stack.

This is the multi-user test bed the paper plans for its evaluation
(Section 3.4): N clients connect to the declarative scheduler, each
submitting one request at a time and waiting for its result; the
scheduler batches, runs its protocol, and dispatches qualified batches
to a :class:`~repro.server.engine.BatchServer` whose own scheduling is
bypassed.  Time is virtual (deterministic); the scheduler's own query
cost is charged via :class:`~repro.core.scheduler.SchedulerCostModel`.

Because a blocked request just stays in the pending table, two
transactions can block each other (the set-at-a-time analogue of a
deadlock).  The paper's Listing 1 does not address this; the middleware
resolves it with a timeout: a transaction whose request has been
pending longer than ``deadlock_timeout`` is aborted (an ``a`` request
is synthesized into history, releasing its locks) and its client starts
a fresh transaction.

Robustness mode (all opt-in — a simulation built without these knobs
runs the exact legacy event sequence):

* ``faults`` (:class:`~repro.faults.spec.FaultPlan`) injects client
  crashes/stalls, request drops, clock jumps, and forced scheduler-step
  exceptions, all sampled deterministically from the run seed.
* ``recovery`` (:class:`~repro.faults.recovery.RecoveryPolicy`)
  promotes the deadlock timeout into the scheduler itself and adds
  exponential-backoff retries (same profile, fresh transaction number)
  with a retry budget, plus orphan reaping for crashed clients.
* ``admission`` (:class:`~repro.faults.admission.AdmissionPolicy`)
  bounds the pending table; shed transactions are retried like aborts.
* ``check_invariants`` attaches an
  :class:`~repro.faults.invariants.InvariantMonitor` that asserts the
  scheduler's safety invariants after every step and request-lifecycle
  totality at the end of the run.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.core.scheduler import (
    DeclarativeScheduler,
    SchedulerConfig,
    SchedulerCostModel,
)
from repro.core.triggers import TriggerPolicy
from repro.faults.admission import AdmissionPolicy
from repro.faults.injector import InjectedStepFault
from repro.faults.invariants import InvariantMonitor, lock_model_of
from repro.faults.recovery import RecoveryPolicy
from repro.faults.spec import FaultPlan
from repro.metrics.collector import MetricsCollector
from repro.model.request import (
    NO_OBJECT,
    Operation,
    Request,
    RequestAttributes,
)
from repro.protocols.base import Protocol
from repro.server.costmodel import CostModel, PAPER_CALIBRATION
from repro.server.engine import BatchServer
from repro.sim.simulator import Simulator
from repro.workload.generator import TransactionFactory
from repro.workload.spec import WorkloadSpec
from repro.workload.traces import Trace


@dataclass
class MiddlewareResult:
    """Outcome of one closed-loop middleware run."""

    clients: int
    duration: float
    completed_statements: int = 0
    committed_transactions: int = 0
    timeout_aborts: int = 0
    scheduler_runs: int = 0
    scheduler_cost: float = 0.0
    server_busy: float = 0.0
    batch_sizes: list[int] = field(default_factory=list)
    #: Per-SLA-class response-time samples (seconds).
    response_times: dict[str, list[float]] = field(default_factory=dict)
    #: Dispatched-request log (dispatch order), when recording was on.
    trace: Optional["Trace"] = None
    # -- robustness / recovery telemetry (all zero on fault-free runs) --
    #: Closed-loop no-progress re-arms (the scheduler ran but granted
    #: nothing and the blocked requests forced a timed re-check).
    stall_rearms: int = 0
    #: Aborts caused by the deadlock/pending timeout (sim- or
    #: scheduler-side, whichever owns timeouts for this run).
    deadlock_timeout_aborts: int = 0
    #: Transaction retries (same profile resubmitted under a new ta).
    retries: int = 0
    #: Transactions abandoned after exhausting the retry budget.
    retry_budget_exhausted: int = 0
    #: Transactions shed by admission control.
    sheds: int = 0
    #: Orphaned transactions reaped after their client crashed.
    reaped_orphans: int = 0
    #: Injected fault occurrences.
    crashes: int = 0
    stalls: int = 0
    drops: int = 0
    clock_jumps: int = 0
    step_faults: int = 0
    #: Disruption → next-commit latencies (time-to-recover samples).
    recovery_times: list[float] = field(default_factory=list)
    #: Statements of *committed* transactions only (work that survived).
    goodput_statements: int = 0
    #: Invariant checks executed (0 when monitoring was off).
    invariant_checks: int = 0
    #: Cumulative delta/plan-cache maintenance counters from the
    #: protocol's backend (None unless the backend keeps incrementally
    #: maintained state — e.g. ``compiled-delta``).
    delta_maintenance: Optional[dict] = None

    @property
    def throughput(self) -> float:
        return self.completed_statements / self.duration if self.duration else 0.0

    @property
    def goodput(self) -> float:
        return self.goodput_statements / self.duration if self.duration else 0.0

    @property
    def aborts(self) -> int:
        """All scheduler-synthesized aborts (timeouts + orphan reaps)."""
        return self.deadlock_timeout_aborts + self.reaped_orphans

    @property
    def mean_recovery_time(self) -> float:
        if not self.recovery_times:
            return 0.0
        return sum(self.recovery_times) / len(self.recovery_times)

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    def mean_response(self, sla_class: Optional[str] = None) -> float:
        if sla_class is None:
            samples = [s for v in self.response_times.values() for s in v]
        else:
            samples = self.response_times.get(sla_class, [])
        return sum(samples) / len(samples) if samples else 0.0


class _SimClient:
    """One closed-loop client: transaction iterator + outstanding state."""

    __slots__ = (
        "index",
        "factory",
        "attrs",
        "ta",
        "statements",
        "position",
        "crashed",
        "attempt",
        "drops_in_row",
        "epoch",
    )

    def __init__(self, index: int, factory: TransactionFactory, attrs) -> None:
        self.index = index
        self.factory = factory
        self.attrs = attrs
        self.ta = -1
        self.statements = []
        self.position = 0
        self.crashed = False
        #: Retries of the current transaction profile (0 = first try).
        self.attempt = 0
        #: Consecutive drops of the current statement submission.
        self.drops_in_row = 0
        #: Generation counter: bumped whenever the client's submit chain
        #: is (re)started or torn down, so deferred continuations (stall
        #: resumes, drop backoffs, scheduled restarts) can detect they
        #: belong to a superseded chain and die instead of running a
        #: second concurrent chain over the shared ``position``.
        self.epoch = 0


class MiddlewareSimulation:
    """Virtual-time closed-loop run of clients → scheduler → server."""

    def __init__(
        self,
        protocol: Protocol,
        trigger: TriggerPolicy,
        spec: WorkloadSpec,
        clients: int,
        seed: int = 0,
        cost_model: CostModel = PAPER_CALIBRATION,
        scheduler_cost: SchedulerCostModel = SchedulerCostModel(),
        deadlock_timeout: float = 0.5,
        attrs_for_client=None,
        scheduler_config: SchedulerConfig = SchedulerConfig(),
        record_trace: bool = False,
        start_delay_for_client=None,
        faults: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        admission: Optional[AdmissionPolicy] = None,
        check_invariants: bool = False,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        if clients <= 0:
            raise ValueError("clients must be positive")
        self.protocol = protocol
        self.trigger = trigger
        self.spec = spec
        self.clients = clients
        self.seed = seed
        self.cost_model = cost_model
        self.scheduler_cost = scheduler_cost
        self.deadlock_timeout = deadlock_timeout
        self.attrs_for_client = attrs_for_client
        self.scheduler_config = scheduler_config
        self.record_trace = record_trace
        #: Optional ``client_index -> virtual start time`` map for open
        #: arrival patterns (bursty waves, ramp-ups); default all at 0.
        self.start_delay_for_client = start_delay_for_client
        self.faults = faults
        self.recovery = recovery
        self.admission = admission
        self.check_invariants = check_invariants
        self.metrics = metrics

    def run(self, duration: float) -> MiddlewareResult:
        sim = Simulator()
        rng = random.Random(self.seed)
        scheduler = DeclarativeScheduler(
            self.protocol,
            trigger=self.trigger,
            config=self.scheduler_config,
            recovery=self.recovery,
            admission=self.admission,
            metrics=self.metrics,
        )
        monitor: Optional[InvariantMonitor] = None
        if self.check_invariants:
            monitor = InvariantMonitor(lock_model_of(self.protocol))
            scheduler.monitor = monitor
        injector = (
            self.faults.build(seed=self.seed, clients=self.clients, duration=duration)
            if self.faults is not None
            else None
        )
        if injector is not None and injector.has_step_faults:
            scheduler.fault_hook = injector.check_step
        server = BatchServer(self.cost_model)
        result = MiddlewareResult(clients=self.clients, duration=duration)
        if self.record_trace:
            result.trace = Trace()
        ta_counter = itertools.count(1)
        id_counter = itertools.count(1)
        submit_times: dict[int, float] = {}
        first_pending_since: dict[int, float] = {}  # ta -> first submit time
        client_of_ta: dict[int, _SimClient] = {}
        #: Request ids lost in transit (accounted for in the final
        #: lifecycle-totality check: dropped, not lost by the scheduler).
        dropped_ids: set[int] = set()
        #: Start of the current disruption episode (crash/abort/shed);
        #: closed by the next commit anywhere in the system.
        disruption_since: Optional[float] = None
        end = duration

        clients = []
        for index in range(self.clients):
            attrs = (
                self.attrs_for_client(index)
                if self.attrs_for_client is not None
                else RequestAttributes(client_id=index)
            )
            factory = TransactionFactory(
                self.spec, random.Random(rng.randrange(2**63))
            )
            clients.append(_SimClient(index, factory, attrs))

        def note_disruption() -> None:
            nonlocal disruption_since
            if disruption_since is None:
                disruption_since = sim.now

        def begin_transaction(client: _SimClient, retry: bool = False) -> None:
            if client.crashed:
                return
            client.epoch += 1
            client.ta = next(ta_counter)
            if not retry:
                client.statements = client.factory.next_profile()
                client.attempt = 0
            client.position = 0
            client_of_ta[client.ta] = client
            submit_next(client)

        def resume_chain(client: _SimClient):
            """A continuation of the client's *current* submit chain.

            Captures the chain epoch: if the transaction is aborted,
            retried, or the client restarts before the continuation
            fires, the stale callback dies instead of racing the new
            chain (two chains over one shared ``position`` dispatch
            intrata out of order — a monotonicity violation).
            """
            epoch = client.epoch

            def fire(c: _SimClient = client, e: int = epoch) -> None:
                if c.epoch == e:
                    submit_next(c, True)

            return fire

        def restart_chain(client: _SimClient):
            """A deferred ``begin_transaction`` guarded the same way:
            only the most recently scheduled restart may begin."""
            epoch = client.epoch

            def fire(c: _SimClient = client, e: int = epoch) -> None:
                if c.epoch == e:
                    begin_transaction(c)

            return fire

        def retry_chain(client: _SimClient):
            epoch = client.epoch

            def fire(c: _SimClient = client, e: int = epoch) -> None:
                if c.epoch == e:
                    begin_transaction(c, retry=True)

            return fire

        def submit_next(client: _SimClient, resumed: bool = False) -> None:
            if sim.now >= end or client.crashed:
                return
            if injector is not None and not resumed:
                stall = injector.stall_before_submit(client.index)
                if stall is not None:
                    result.stalls += 1
                    sim.schedule(stall, resume_chain(client))
                    return
            if client.position < len(client.statements):
                stmt = client.statements[client.position]
                request = Request(
                    id=next(id_counter),
                    ta=client.ta,
                    intrata=client.position,
                    operation=stmt.operation,
                    obj=stmt.obj,
                    attrs=client.attrs,
                )
            else:
                request = Request(
                    id=next(id_counter),
                    ta=client.ta,
                    intrata=client.position,
                    operation=Operation.COMMIT,
                    obj=NO_OBJECT,
                    attrs=client.attrs,
                )
            if injector is not None and injector.drop_request(client.index):
                drop_submission(client, request)
                return
            client.drops_in_row = 0
            scheduler.submit(request, sim.now)
            submit_times[request.id] = sim.now
            first_pending_since.setdefault(client.ta, sim.now)
            arm_trigger()

        def drop_submission(client: _SimClient, request: Request) -> None:
            """The submission was lost in transit: account for the id,
            then resubmit the same statement with backoff — or give up
            on the transaction when the retry budget is exhausted."""
            result.drops += 1
            dropped_ids.add(request.id)
            if monitor is not None:
                monitor.note_submitted(request, sim.now)
                monitor.note_dropped(request.id, sim.now)
            client.drops_in_row += 1
            budget = (
                self.recovery.max_retries if self.recovery is not None else 3
            )
            base_delay = (
                self.recovery.retry_delay if self.recovery is not None else 0.05
            )
            if client.drops_in_row > budget:
                # Give up: abort the half-submitted transaction so any
                # logical locks it already acquired are released.
                note_disruption()
                abort = scheduler.abort_transaction(
                    client.ta, sim.now, reason="drop-budget"
                )
                if result.trace is not None:
                    result.trace.record(sim.now, abort)
                client_of_ta.pop(client.ta, None)
                first_pending_since.pop(client.ta, None)
                result.retry_budget_exhausted += 1
                client.drops_in_row = 0
                client.epoch += 1  # tear down: kill in-flight resumes
                if sim.now < end:
                    sim.schedule(
                        self.cost_model.restart_delay, restart_chain(client)
                    )
                return
            delay = (
                self.recovery.restart_delay_for(client.drops_in_row, base_delay)
                if self.recovery is not None
                else base_delay
            )
            sim.schedule(delay, resume_chain(client))

        step_event = None
        step_event_time = float("inf")

        def schedule_step_at(at_time: float) -> None:
            """Schedule (or pull earlier) the next scheduler step."""
            nonlocal step_event, step_event_time
            at_time = max(at_time, sim.now)
            if at_time > end:
                return
            if step_event is not None and step_event_time <= at_time:
                return
            if step_event is not None:
                sim.cancel(step_event)
            step_event_time = at_time
            step_event = sim.schedule_at(at_time, run_step)

        def arm_trigger() -> None:
            if sim.now >= end:
                return
            if self.trigger.should_fire(scheduler.incoming, sim.now):
                schedule_step_at(sim.now)
                return
            next_check = self.trigger.next_check(sim.now)
            if next_check is not None:
                schedule_step_at(next_check)
            elif len(scheduler.incoming):
                # Purely fill-driven triggers can starve when fewer than
                # `threshold` clients remain unblocked; a watchdog step
                # after the deadlock timeout bounds that starvation
                # (and lets timed-out transactions be aborted).
                schedule_step_at(sim.now + self.deadlock_timeout)

        def run_step() -> None:
            nonlocal step_event, step_event_time
            step_event = None
            step_event_time = float("inf")
            if sim.now >= end:
                return
            try:
                step = scheduler.step(sim.now)
            except InjectedStepFault:
                # The step failed before touching any state; treat it as
                # a transient internal error and retry shortly.
                result.step_faults += 1
                if self.metrics is not None:
                    self.metrics.incr("sim.step_faults")
                schedule_step_at(sim.now + 1e-3)
                return
            result.scheduler_runs += 1
            cost = self.scheduler_cost.step_cost(
                step.pending_before, step.history_rows
            )
            result.scheduler_cost += cost
            batch = step.qualified
            if result.trace is not None:
                # Mirror the scheduler-internal order (admission sheds
                # happen before the protocol query, recovery aborts
                # after dispatch) so this log and the invariant
                # monitor's violation trace are byte-compatible.
                for __, abort in step.recovery.sheds:
                    result.trace.record(sim.now, abort)
                for request in batch:
                    result.trace.record(sim.now, request)
                for __, abort in step.recovery.timeouts:
                    result.trace.record(sim.now, abort)
                for __, abort in step.recovery.orphans:
                    result.trace.record(sim.now, abort)
            if batch:
                result.batch_sizes.append(len(batch))
                service = server.execute_batch(batch)
                result.server_busy += service
                # Statements within a batch execute sequentially on the
                # server; each request's result returns as it completes,
                # so batch *order* (SLA protocols) affects latency.
                offset = sim.now + cost + self.cost_model.batch_fixed_cost
                for request in batch:
                    if request.operation.is_data_access:
                        offset += self.cost_model.statement_cost
                    if offset <= end:
                        sim.schedule_at(
                            offset, lambda r=request: request_done(r)
                        )
            if step.recovery:
                handle_recovery_actions(step.recovery)
            if scheduler.recovery is None:
                handle_timeouts()
            if len(scheduler.pending) or len(scheduler.incoming):
                if batch:
                    # Progress was made: continue at the trigger's pace.
                    arm_trigger()
                else:
                    # No progress: the blocked requests need a commit that
                    # is still in flight (its batch completion will re-arm
                    # us).  Time-based triggers pace the re-check on their
                    # own ``next_check`` schedule — that is what makes the
                    # E7 trigger ablation differentiate policies — capped
                    # at one deadlock timeout so deadlocked transactions
                    # still get aborted; enqueue-driven triggers fall back
                    # to the timeout slice.
                    result.stall_rearms += 1
                    if self.metrics is not None:
                        self.metrics.incr("sim.stall_rearms")
                    next_check = self.trigger.next_check(sim.now)
                    if next_check is not None and next_check > sim.now:
                        schedule_step_at(
                            min(next_check, sim.now + self.deadlock_timeout)
                        )
                    else:
                        delay = max(self.deadlock_timeout / 4, 1e-4)
                        schedule_step_at(sim.now + delay)

        def handle_recovery_actions(actions) -> None:
            """React to scheduler-side aborts (timeouts, orphan reaps,
            admission sheds): record them, then restart/retry clients."""
            for ta, abort in actions.timeouts:
                result.timeout_aborts += 1
                result.deadlock_timeout_aborts += 1
                if self.metrics is not None:
                    self.metrics.incr("sim.deadlock_timeout_aborts")
                finish_aborted(ta, abort, retry=True)
            for ta, abort in actions.orphans:
                result.reaped_orphans += 1
                finish_aborted(ta, abort, retry=False)
            for ta, abort in actions.sheds:
                result.sheds += 1
                finish_aborted(ta, abort, retry=True)

        def finish_aborted(ta: int, abort: Request, retry: bool) -> None:
            # The abort itself was already written to the trace by
            # run_step, in scheduler order.
            note_disruption()
            first_pending_since.pop(ta, None)
            client = client_of_ta.pop(ta, None)
            if client is None or client.crashed or sim.now >= end:
                return
            if client.ta != ta:
                # A stale transaction from before a crash/restart: the
                # client is already running a newer chain — reap only.
                return
            client.epoch += 1  # tear down: kill in-flight resumes
            if not retry:
                return
            client.attempt += 1
            budget = (
                self.recovery.max_retries if self.recovery is not None else 0
            )
            if client.attempt > budget:
                # Budget exhausted: abandon this profile, move on.
                result.retry_budget_exhausted += 1
                sim.schedule(
                    self.cost_model.restart_delay, restart_chain(client)
                )
                return
            result.retries += 1
            if self.metrics is not None:
                self.metrics.incr("sim.retries")
            delay = (
                self.recovery.restart_delay_for(
                    client.attempt, self.cost_model.restart_delay
                )
                if self.recovery is not None
                else self.cost_model.restart_delay
            )
            sim.schedule(delay, retry_chain(client))

        def request_done(request: Request) -> None:
            nonlocal disruption_since
            started = submit_times.pop(request.id, None)
            if started is not None:
                samples = result.response_times.setdefault(
                    request.attrs.sla_class, []
                )
                samples.append(sim.now - started)
            if request.operation.is_data_access:
                result.completed_statements += 1
            client = client_of_ta.get(request.ta)
            if client is None:
                return
            first_pending_since.pop(request.ta, None)
            if client.ta != request.ta:
                # A completion from a superseded transaction (the client
                # crashed and restarted while this result was in
                # flight): drop the stale mapping, don't advance the
                # new chain's position.
                del client_of_ta[request.ta]
                return
            if request.operation is Operation.COMMIT:
                result.committed_transactions += 1
                result.goodput_statements += len(client.statements)
                if disruption_since is not None:
                    result.recovery_times.append(sim.now - disruption_since)
                    disruption_since = None
                del client_of_ta[request.ta]
                begin_transaction(client)
            else:
                if client.crashed:
                    # The server finished the statement but the client is
                    # gone; nobody advances the transaction (it will be
                    # reaped as an orphan).
                    return
                client.position += 1
                submit_next(client)

        def handle_timeouts() -> None:
            doomed: list[int] = []
            for ta, since in first_pending_since.items():
                if sim.now - since > self.deadlock_timeout:
                    doomed.append(ta)
            for ta in doomed:
                abort_transaction(ta)

        def abort_transaction(ta: int) -> None:
            client = client_of_ta.pop(ta, None)
            first_pending_since.pop(ta, None)
            # Remove the transaction's pending request(s) and record an
            # abort so held (logical) locks are released.
            ta_pos = scheduler.pending.table.schema.resolve("ta")
            id_pos = scheduler.pending.table.schema.resolve("id")
            doomed_ids = [
                row[id_pos]
                for row in scheduler.pending.table.rows
                if row[ta_pos] == ta
            ]
            scheduler.pending.table.delete_where(lambda row: row[ta_pos] == ta)
            for request_id in doomed_ids:
                submit_times.pop(request_id, None)
                scheduler.pending.table.attrs_by_id.pop(request_id, None)
            abort = Request(
                id=next(id_counter),
                ta=ta,
                intrata=0,
                operation=Operation.ABORT,
                obj=NO_OBJECT,
            )
            scheduler.history.record_batch([abort])
            scheduler.protocol.observe_executed([abort])
            if scheduler.config.prune_history:
                pruned = scheduler.history.finished_transactions
                scheduler.history.prune_finished()
                if pruned:
                    scheduler.protocol.observe_pruned(pruned)
            if monitor is not None:
                monitor.note_terminal(doomed_ids, "aborted", sim.now)
                monitor.note_dispatch(sim.now, abort)
            if result.trace is not None:
                result.trace.record(sim.now, abort)
            result.timeout_aborts += 1
            result.deadlock_timeout_aborts += 1
            if self.metrics is not None:
                self.metrics.incr("sim.deadlock_timeout_aborts")
            note_disruption()
            if (
                client is not None
                and not client.crashed
                and client.ta == ta
                and sim.now < end
            ):
                client.epoch += 1  # tear down: kill in-flight resumes
                sim.schedule(
                    self.cost_model.restart_delay, restart_chain(client)
                )

        def crash_client(client: _SimClient) -> None:
            if sim.now >= end or client.crashed:
                return
            client.crashed = True
            result.crashes += 1
            note_disruption()
            scheduler.note_client_crashed(client.attrs.client_id, sim.now)

        def restart_client(client: _SimClient) -> None:
            if sim.now >= end or not client.crashed:
                return
            client.crashed = False
            scheduler.note_client_recovered(client.attrs.client_id)
            begin_transaction(client)

        def clock_jump(delta: float) -> None:
            result.clock_jumps += 1
            sim.jump(delta)

        if injector is not None:
            for index, (at, restart) in sorted(injector.crash_schedule.items()):
                crash_target = clients[index]
                sim.schedule_at(at, lambda c=crash_target: crash_client(c))
                if restart is not None and restart < end:
                    sim.schedule_at(
                        restart, lambda c=crash_target: restart_client(c)
                    )
            for at, delta in injector.clock_jumps:
                sim.schedule_at(at, lambda d=delta: clock_jump(d))

        for client in clients:
            delay = (
                float(self.start_delay_for_client(client.index))
                if self.start_delay_for_client is not None
                else 0.0
            )
            if delay > 0.0:
                sim.schedule(delay, lambda c=client: begin_transaction(c))
            else:
                begin_transaction(client)
        sim.run_until(end)
        if monitor is not None:
            live_ids = set(submit_times) | dropped_ids
            monitor.final_check(live_ids, sim.now)
            result.invariant_checks = monitor.checks_run
        stats_fn = getattr(self.protocol, "maintenance_stats", None)
        if callable(stats_fn):
            result.delta_maintenance = stats_fn()
        return result
