"""Deterministic fault injection.

A :class:`FaultInjector` turns a declarative
:class:`~repro.faults.spec.FaultPlan` into concrete injection
decisions.  Every decision is sampled from a named
:class:`~repro.sim.rng.RandomStreams` stream (one per fault family),
derived from the run's seed, so changing one fault family's
consumption pattern perturbs neither the others nor the workload draw —
and any faulted run replays exactly.

Timeline faults (crashes, clock jumps) are pre-sampled at construction
in a fixed order (client index, jump index); per-event faults (stalls,
drops, step exceptions) consume their stream in the deterministic event
order of the single-threaded virtual-time loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.spec import FaultKind, FaultPlan
from repro.sim.rng import RandomStreams


class InjectedStepFault(Exception):
    """A forced scheduler-step failure (raised before the step touches
    any state; callers treat it as a transient internal error)."""

    def __init__(self, step_index: int) -> None:
        super().__init__(f"injected fault in scheduler step {step_index}")
        self.step_index = step_index


class FaultInjector:
    """One run's materialized fault decisions (stateful; build fresh
    per run via :meth:`FaultPlan.build`)."""

    def __init__(
        self, plan: FaultPlan, seed: int, clients: int, duration: float
    ) -> None:
        self.plan = plan
        self.seed = seed
        self.clients = clients
        self.duration = duration
        streams = RandomStreams(seed)
        self._stall_rng = streams.stream("faults.stall")
        self._drop_rng = streams.stream("faults.drop")
        self._step_rng = streams.stream("faults.step")

        self._stall_specs = plan.of_kind(FaultKind.CLIENT_STALL)
        self._drop_specs = plan.of_kind(FaultKind.REQUEST_DROP)
        self._step_specs = plan.of_kind(FaultKind.STEP_EXCEPTION)

        #: client index -> (crash time, restart time or None).
        self.crash_schedule: Dict[int, Tuple[float, Optional[float]]] = {}
        crash_rng = streams.stream("faults.crash")
        for spec in plan.of_kind(FaultKind.CLIENT_CRASH):
            lo, hi = spec.window
            for client in range(clients):
                if client in self.crash_schedule:
                    continue  # first spec wins; one crash per client
                if crash_rng.random() < spec.probability:
                    at = duration * (lo + crash_rng.random() * (hi - lo))
                    restart = (
                        at + spec.restart_after
                        if spec.restart_after is not None
                        else None
                    )
                    self.crash_schedule[client] = (at, restart)

        #: Sorted (time, delta) clock jumps.
        self.clock_jumps: List[Tuple[float, float]] = []
        jump_rng = streams.stream("faults.clock")
        for spec in plan.of_kind(FaultKind.CLOCK_JUMP):
            lo, hi = spec.window
            for __ in range(spec.count):
                at = duration * (lo + jump_rng.random() * (hi - lo))
                # Never jump past the horizon: the landing time stays
                # inside the run so post-jump recovery is observable.
                delta = min(spec.duration, max(0.0, duration - at))
                if delta > 0:
                    self.clock_jumps.append((at, delta))
        self.clock_jumps.sort()

    @property
    def has_step_faults(self) -> bool:
        """True when the plan can force scheduler-step exceptions (only
        then is a ``fault_hook`` worth installing)."""
        return bool(self._step_specs)

    # -- per-event decisions (deterministic call order) --------------------

    def stall_before_submit(self, client_index: int) -> Optional[float]:
        """Stall duration to apply before this submission, or None."""
        for spec in self._stall_specs:
            if self._stall_rng.random() < spec.probability:
                return spec.duration
        return None

    def drop_request(self, client_index: int) -> bool:
        """True when this submission is lost in transit."""
        for spec in self._drop_specs:
            if self._drop_rng.random() < spec.probability:
                return True
        return False

    def check_step(self, step_index: int) -> None:
        """Scheduler step hook; raises :class:`InjectedStepFault` when
        this step is chosen to fail.  Installed as
        ``DeclarativeScheduler.fault_hook``, which runs before the step
        mutates any state."""
        for spec in self._step_specs:
            if self._step_rng.random() < spec.probability:
                raise InjectedStepFault(step_index)
