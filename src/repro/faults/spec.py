"""Declarative fault specifications.

A :class:`FaultSpec` names one family of faults (client crash, client
stall, request drop, clock jump, forced scheduler-step exception) with
its parameters; a :class:`FaultPlan` bundles several specs into the
fault side of a scenario.  Both are pure data — like
:class:`~repro.scenarios.spec.ScenarioSpec`, a plan can be registered,
printed, and rebuilt bit-identically — and all randomness is deferred
to the per-subsystem streams of :class:`~repro.sim.rng.RandomStreams`,
so a faulted run is exactly as replayable as a fault-free one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class FaultKind(enum.Enum):
    """The injectable fault families."""

    #: A client process dies: it stops submitting and never terminates
    #: its in-flight transaction (locks stay held until reaped).
    CLIENT_CRASH = "client-crash"
    #: A client freezes for a while mid-transaction (GC pause, swap
    #: storm) while holding whatever it was granted.
    CLIENT_STALL = "client-stall"
    #: A submitted request is lost before reaching the incoming queue
    #: (dropped packet); the client retries with backoff.
    REQUEST_DROP = "request-drop"
    #: The virtual clock jumps forward (NTP step, VM pause).
    CLOCK_JUMP = "clock-jump"
    #: One scheduler step raises before doing any work (transient
    #: internal error); no scheduler state may be corrupted.
    STEP_EXCEPTION = "step-exception"


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One declarative fault family.

    Field use by kind:

    * ``CLIENT_CRASH``: each client crashes with ``probability``, at a
      time drawn uniformly from ``window`` (fractions of the run
      duration); it reconnects ``restart_after`` seconds later
      (``None`` = stays dead).
    * ``CLIENT_STALL``: before each statement submission the client
      stalls for ``duration`` seconds with ``probability``.
    * ``REQUEST_DROP``: each submission is lost with ``probability``.
    * ``CLOCK_JUMP``: ``count`` jumps of ``duration`` seconds each, at
      times drawn uniformly from ``window``.
    * ``STEP_EXCEPTION``: each scheduler step fails with
      ``probability`` before touching any state.
    """

    kind: FaultKind
    probability: float = 0.0
    duration: float = 0.0
    restart_after: Optional[float] = None
    count: int = 0
    #: (start, end) as fractions of the run duration.
    window: Tuple[float, float] = (0.0, 1.0)

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            raise TypeError(f"kind must be a FaultKind, got {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability out of [0,1]: {self.probability}")
        lo, hi = self.window
        if not 0.0 <= lo <= hi <= 1.0:
            raise ValueError(f"window must satisfy 0 <= lo <= hi <= 1: {self.window}")
        if self.kind in (FaultKind.CLIENT_STALL, FaultKind.CLOCK_JUMP):
            if self.duration <= 0:
                raise ValueError(f"{self.kind.value} needs a positive duration")
        if self.kind is FaultKind.CLOCK_JUMP and self.count <= 0:
            raise ValueError("clock-jump needs a positive count")
        if (
            self.kind
            in (FaultKind.CLIENT_STALL, FaultKind.REQUEST_DROP, FaultKind.STEP_EXCEPTION, FaultKind.CLIENT_CRASH)
            and self.probability == 0.0
        ):
            raise ValueError(f"{self.kind.value} needs a positive probability")
        if self.restart_after is not None and self.restart_after < 0:
            raise ValueError("restart_after must be non-negative")

    @property
    def label(self) -> str:
        details = []
        if self.probability:
            details.append(f"p={self.probability:g}")
        if self.duration:
            details.append(f"d={self.duration:g}s")
        if self.count:
            details.append(f"n={self.count}")
        if details:
            return f"{self.kind.value}({' '.join(details)})"
        return self.kind.value


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """The fault side of one scenario: a bundle of fault specs.

    Build concrete injection decisions with
    :meth:`~repro.faults.injector.FaultInjector` via :meth:`build`; the
    injector samples every decision from named
    :class:`~repro.sim.rng.RandomStreams` streams derived from the
    run's seed, so two runs of the same (plan, seed) inject identical
    faults.
    """

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError("a fault plan needs at least one fault spec")

    def of_kind(self, kind: FaultKind) -> Tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.specs if spec.kind is kind)

    @property
    def label(self) -> str:
        return "+".join(spec.label for spec in self.specs)

    def build(self, seed: int, clients: int, duration: float):
        """Materialize a :class:`~repro.faults.injector.FaultInjector`
        for one run (fresh per run — injectors are stateful)."""
        from repro.faults.injector import FaultInjector

        return FaultInjector(self, seed=seed, clients=clients, duration=duration)


def crash(probability: float, restart_after: Optional[float] = 0.5,
          window: Tuple[float, float] = (0.0, 1.0)) -> FaultSpec:
    """Shorthand for a client-crash spec."""
    return FaultSpec(
        FaultKind.CLIENT_CRASH,
        probability=probability,
        restart_after=restart_after,
        window=window,
    )


def stall(probability: float, duration: float) -> FaultSpec:
    """Shorthand for a client-stall spec."""
    return FaultSpec(FaultKind.CLIENT_STALL, probability=probability, duration=duration)


def drop(probability: float) -> FaultSpec:
    """Shorthand for a request-drop spec."""
    return FaultSpec(FaultKind.REQUEST_DROP, probability=probability)


def clock_jump(count: int, duration: float,
               window: Tuple[float, float] = (0.1, 0.9)) -> FaultSpec:
    """Shorthand for a clock-jump spec."""
    return FaultSpec(FaultKind.CLOCK_JUMP, count=count, duration=duration, window=window)


def step_exception(probability: float) -> FaultSpec:
    """Shorthand for a forced-step-exception spec."""
    return FaultSpec(FaultKind.STEP_EXCEPTION, probability=probability)
