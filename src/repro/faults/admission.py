"""Admission control: graceful degradation under overload.

An :class:`AdmissionPolicy` bounds the scheduler's pending table.  When
a drain pushes the table past ``max_pending`` rows, whole transactions
are *shed*: their pending rows are removed and an abort is synthesized
into history (releasing any logical locks they already hold), and the
driver is told so clients can back off and retry.  Victims are chosen
lowest-priority first, then most-retried first, then newest first —
fresh low-priority work is rejected before old high-priority work is
disturbed, and a client that keeps failing does not get to monopolize
the pending table with its retries.

The serving layer (:mod:`repro.serve`) reuses the same policy for
*submit-side backpressure*: :meth:`SchedulerService.submit
<repro.serve.service.SchedulerService.submit>` waits while the
scheduler already holds ``max_pending`` undispatched rows, so well-
behaved open-loop clients slow down before anything is shed.  Step-time
shedding stays armed underneath as the hard backstop (many submitters
racing one drain), and the service surfaces those sheds to clients as
``TicketRejected("shed")``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List


@dataclass(frozen=True, slots=True)
class AdmissionPolicy:
    """Bounded pending table with shed-on-overload."""

    #: Maximum pending-table rows after a drain; 0/negative is invalid.
    max_pending: int

    def __post_init__(self) -> None:
        if self.max_pending <= 0:
            raise ValueError("max_pending must be positive")

    def choose_victims(
        self,
        rows_by_ta: Dict[int, int],
        priority_of_ta: Dict[int, int],
        retries_of_ta: Dict[int, int],
        arrival_of_ta: Dict[int, float],
        total_rows: int,
    ) -> List[int]:
        """Transactions to shed so ``total_rows`` drops to the cap.

        ``rows_by_ta`` maps each pending transaction to its pending row
        count; the other maps supply the victim-ordering keys.
        """
        overflow = total_rows - self.max_pending
        if overflow <= 0:
            return []
        order: Callable[[int], tuple] = lambda ta: (
            priority_of_ta.get(ta, 0),
            -retries_of_ta.get(ta, 0),
            -arrival_of_ta.get(ta, 0.0),
            -ta,
        )
        victims: List[int] = []
        for ta in sorted(rows_by_ta, key=order):
            if overflow <= 0:
                break
            victims.append(ta)
            overflow -= rows_by_ta[ta]
        return victims
