"""Runtime invariant monitors for the scheduler.

An :class:`InvariantMonitor` observes every request's lifecycle and
every scheduler step, and asserts the safety properties the paper's
declarative schedulers are supposed to guarantee — properties that are
easy to believe on well-behaved workloads and easy to silently lose
once clients crash, stall, and retry:

1. **No conflicting concurrent grants** — per the protocol's declared
   :class:`~repro.protocols.spec.LockModel`, no two active transactions
   may simultaneously hold grants the model declares incompatible
   (e.g. two writers of one object under SS2PL).
2. **No lost requests** — every submitted request ends in exactly one
   terminal state (granted, aborted, or shed); nothing vanishes and
   nothing terminates twice.
3. **Batch monotonicity** — each transaction's requests are dispatched
   in strictly increasing program (``intrata``) order.

Violations raise :class:`InvariantViolation`, a structured error that
carries the dispatch trace up to the violation as JSONL lines; written
to disk (:meth:`InvariantViolation.write_trace`) the file replays
through the existing ``repro scenario replay``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.model.request import Request
from repro.protocols.spec import LockModel
from repro.workload.traces import Trace, write_trace_file

#: Terminal lifecycle states (invariant 2 asserts exactly one of these).
TERMINAL_STATES = ("granted", "aborted", "shed")


class InvariantViolation(AssertionError):
    """A broken scheduler safety invariant, with replay context.

    ``kind`` is one of ``conflicting-grants`` / ``lost-request`` /
    ``double-terminal`` / ``non-monotonic-batch``; ``trace`` holds the
    dispatch log up to the violation and ``context`` the scenario
    header (name/seed/duration/clients) when a scenario runner
    attached one.
    """

    def __init__(
        self,
        kind: str,
        detail: str,
        now: float = 0.0,
        step: int = 0,
        trace: Optional[Trace] = None,
    ) -> None:
        super().__init__(
            f"invariant violated [{kind}] at t={now:g} step {step}: {detail}"
        )
        self.kind = kind
        self.detail = detail
        self.now = now
        self.step = step
        self.trace = trace if trace is not None else Trace()
        self.context: dict = {}

    def attach_context(self, **context) -> "InvariantViolation":
        self.context.update(context)
        return self

    def trace_jsonl(self, label: str = "violation") -> List[str]:
        """The dispatch log up to the violation as JSONL lines."""
        from repro.workload.traces import _entry_line

        return [
            _entry_line(label, time, request)
            for time, request in self.trace.entries
        ]

    def write_trace(self, path, label: Optional[str] = None) -> int:
        """Persist the violation's dispatch log as a repro-trace file.

        The header carries the attached scenario context plus
        ``prefix: true``, so ``repro scenario replay`` re-runs the
        scenario and verifies the recorded prefix byte-for-byte.  The
        trace label defaults to the attached cell label, so the replay
        compares against the right cell's dispatch log."""
        if label is None:
            label = self.context.get("cell", "violation")
        header = {
            "prefix": True,
            "violation": self.kind,
            "violation_detail": self.detail,
            "violation_time": self.now,
            "violation_step": self.step,
        }
        header.update(self.context)
        return write_trace_file(path, [(label, self.trace)], header=header)


def lock_model_of(protocol) -> Optional[LockModel]:
    """Best-effort lock model of a live protocol: spec-bound protocols
    expose their spec; SLA-style decorators expose ``inner``.  Returns
    None (conflict checking disabled) for protocols whose conflict rule
    is not declaratively known — e.g. adaptive switchers."""
    spec = getattr(protocol, "spec", None)
    if spec is not None and getattr(spec, "lock_model", None) is not None:
        return spec.lock_model
    inner = getattr(protocol, "inner", None)
    if inner is not None:
        return lock_model_of(inner)
    return None


class InvariantMonitor:
    """Always-on-in-tests runtime checker (``--check-invariants``).

    Attach to a :class:`~repro.core.scheduler.DeclarativeScheduler` via
    its ``monitor`` attribute; the scheduler calls
    :meth:`note_submitted` / :meth:`note_terminal` / :meth:`after_step`
    at the right lifecycle points.  Drivers report client-side events
    (drops) themselves and call :meth:`final_check` at the end of a
    run.
    """

    def __init__(
        self,
        lock_model: Optional[LockModel] = None,
        conflict_interval: int = 1,
    ) -> None:
        if conflict_interval < 1:
            raise ValueError("conflict_interval must be >= 1")
        self.lock_model = lock_model
        #: Run the conflicting-grants scan every N steps (lifecycle
        #: checks always run every step).  Under lock protocols a
        #: conflicting pair of grants persists until one side commits,
        #: so a cadence > 1 still witnesses persistent violations —
        #: only a conflict both created and resolved inside one
        #: interval can slip through.  Benchmarks use a cadence so the
        #: O(history) scan does not dominate the timed region.
        self.conflict_interval = conflict_interval
        self.trace = Trace()
        self.checks_run = 0
        self.violations = 0
        #: request id -> lifecycle state ("pending" | "dropped" | terminal).
        self._state: Dict[int, str] = {}
        #: ta -> highest dispatched intrata.
        self._last_intrata: Dict[int, int] = {}

    # -- lifecycle notifications ------------------------------------------

    def note_submitted(self, request: Request, now: float = 0.0) -> None:
        previous = self._state.get(request.id)
        if previous in TERMINAL_STATES:
            self._fail(
                "double-terminal",
                f"request {request.id} resubmitted after terminal state "
                f"{previous!r}",
                now,
            )
        self._state[request.id] = "pending"

    def note_dropped(self, request_id: int, now: float = 0.0) -> None:
        if self._state.get(request_id) == "pending":
            self._state[request_id] = "dropped"

    def note_terminal(
        self, request_ids: Sequence[int], state: str, now: float = 0.0
    ) -> None:
        if state not in TERMINAL_STATES:
            raise ValueError(f"unknown terminal state {state!r}")
        for request_id in request_ids:
            previous = self._state.get(request_id)
            if previous in TERMINAL_STATES:
                self._fail(
                    "double-terminal",
                    f"request {request_id} reached {state!r} after already "
                    f"terminal {previous!r}",
                    now,
                )
            self._state[request_id] = state

    def note_dispatch(self, now: float, request: Request) -> None:
        """Record one dispatched/synthesized request into the violation
        trace (the replayable context of any later violation)."""
        self.trace.record(now, request)

    # -- per-step checking -------------------------------------------------

    def after_step(self, scheduler, result, now: float) -> None:
        """Run all per-step invariant checks (called by the scheduler at
        the end of every successful step)."""
        self.checks_run += 1
        step = scheduler.steps_run
        for request in result.qualified:
            self.note_dispatch(now, request)
            previous = self._state.get(request.id)
            if previous in TERMINAL_STATES:
                self._fail(
                    "double-terminal",
                    f"request {request.id} granted after terminal "
                    f"{previous!r}",
                    now,
                    step,
                )
            if previous is None:
                self._fail(
                    "lost-request",
                    f"request {request.id} granted but never submitted",
                    now,
                    step,
                )
            self._state[request.id] = "granted"
            last = self._last_intrata.get(request.ta)
            if last is not None and request.intrata <= last:
                self._fail(
                    "non-monotonic-batch",
                    f"ta {request.ta} dispatched intrata {request.intrata} "
                    f"after {last}",
                    now,
                    step,
                )
            self._last_intrata[request.ta] = request.intrata
        if step % self.conflict_interval == 0:
            self._check_conflicting_grants(scheduler, now, step)

    def _check_conflicting_grants(self, scheduler, now: float, step: int) -> None:
        model = self.lock_model
        if model is None:
            return
        history = scheduler.history
        active = history.active_transactions
        if len(active) < 2:
            return
        schema = history.table.schema
        ta_pos = schema.resolve("ta")
        op_pos = schema.resolve("operation")
        obj_pos = schema.resolve("object")
        writers: Dict[int, Set[int]] = {}
        readers: Dict[int, Set[int]] = {}
        for row in history.table.rows:
            ta = row[ta_pos]
            if ta not in active:
                continue
            op = row[op_pos]
            if op == "w" or (op == "r" and model.reads_are_writes):
                writers.setdefault(row[obj_pos], set()).add(ta)
            elif op == "r" and model.reads_take_locks:
                readers.setdefault(row[obj_pos], set()).add(ta)
        for obj, write_tas in writers.items():
            if model.writes_check_writers and len(write_tas) > 1:
                self._fail(
                    "conflicting-grants",
                    f"object {obj} written by concurrent active "
                    f"transactions {sorted(write_tas)}",
                    now,
                    step,
                )
            if model.reads_check_writers or model.writes_check_readers:
                read_tas = readers.get(obj, set()) - write_tas
                if read_tas and write_tas:
                    self._fail(
                        "conflicting-grants",
                        f"object {obj} read by {sorted(read_tas)} while "
                        f"written by {sorted(write_tas)}",
                        now,
                        step,
                    )

    # -- end-of-run checking -----------------------------------------------

    def final_check(self, live_ids: Set[int], now: float) -> dict:
        """Request-lifecycle totality at the end of a run.

        ``live_ids`` are requests the driver can account for outside the
        scheduler (awaiting a stall/retry timer, in flight to the
        server, cut off by the horizon).  Everything else must be in a
        terminal state; a non-terminal request that is neither in the
        scheduler nor accounted for by the driver was *lost*.  Returns
        a state -> count summary."""
        self.checks_run += 1
        counts: Dict[str, int] = {}
        for request_id, state in self._state.items():
            counts[state] = counts.get(state, 0) + 1
            if state in TERMINAL_STATES:
                continue
            if request_id not in live_ids:
                self._fail(
                    "lost-request",
                    f"request {request_id} is {state!r} at end of run but "
                    f"neither terminal nor accounted for by the driver",
                    now,
                )
        return counts

    def states(self) -> Dict[int, str]:
        """Snapshot of every observed request's lifecycle state."""
        return dict(self._state)

    def _fail(
        self, kind: str, detail: str, now: float, step: int = 0
    ) -> None:
        self.violations += 1
        raise InvariantViolation(kind, detail, now=now, step=step, trace=self.trace)
