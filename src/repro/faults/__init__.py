"""Deterministic fault injection, recovery, and invariant monitoring.

The robustness layer of the middleware reproduction: declarative
:class:`FaultSpec`/:class:`FaultPlan` descriptions, a seed-driven
:class:`FaultInjector` (replayable — every decision comes from named
:class:`~repro.sim.rng.RandomStreams` streams), scheduler-side
:class:`RecoveryPolicy` (timeout aborts with backoff, retry budgets,
orphan reaping) and :class:`AdmissionPolicy` (bounded pending table
with shed-on-overload), plus runtime :class:`InvariantMonitor` checks
with structured, replayable :class:`InvariantViolation` errors.
"""

from repro.faults.spec import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    clock_jump,
    crash,
    drop,
    stall,
    step_exception,
)
from repro.faults.injector import FaultInjector, InjectedStepFault
from repro.faults.recovery import RecoveryPolicy
from repro.faults.admission import AdmissionPolicy
from repro.faults.invariants import (
    InvariantMonitor,
    InvariantViolation,
    lock_model_of,
)

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "clock_jump",
    "crash",
    "drop",
    "stall",
    "step_exception",
    "FaultInjector",
    "InjectedStepFault",
    "RecoveryPolicy",
    "AdmissionPolicy",
    "InvariantMonitor",
    "InvariantViolation",
    "lock_model_of",
]
