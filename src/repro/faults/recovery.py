"""Recovery policy: abort-and-retry semantics for the scheduler.

The closed-loop simulation historically resolved deadlocks with a
timeout implemented *outside* the scheduler; :class:`RecoveryPolicy`
promotes that into the :class:`~repro.core.scheduler.DeclarativeScheduler`
itself, and extends it with exponential backoff, a retry budget, and
orphan reaping for crashed clients:

* **Timeout aborts** — a transaction whose request has been pending
  longer than its current timeout is aborted (an ``a`` request is
  synthesized into history, releasing its logical locks).  Each retry
  of the same client widens the timeout by ``backoff_factor``, so a
  repeatedly colliding transaction waits longer before being shot
  again instead of thrashing.
* **Retry budget** — the driver (client) retries an aborted
  transaction at most ``max_retries`` times, with exponentially backed
  off restart delays; after that the work is abandoned (terminal state
  ``aborted``) and the client moves on.
* **Orphan reaping** — a crashed client's granted-but-never-released
  requests are reaped ``orphan_lease`` seconds after the crash: its
  active transactions are aborted so their locks cannot block the rest
  of the system forever.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class RecoveryPolicy:
    """Knobs of the scheduler's abort/retry recovery."""

    #: Base pending-age timeout (seconds) before a transaction is
    #: aborted (the deadlock timeout, now scheduler-owned).
    request_timeout: float = 0.5
    #: Multiplier applied per prior retry of the same client, both to
    #: its timeout and to the driver's restart delay.
    backoff_factor: float = 2.0
    #: Retries of one transaction before the driver abandons it.
    max_retries: int = 3
    #: Cap on the backoff exponent (bounds the widest timeout).
    max_backoff_exponent: int = 4
    #: Seconds after a client crash before its transactions are reaped.
    orphan_lease: float = 0.8
    #: Base driver-side delay before resubmitting after an abort/drop.
    retry_delay: float = 0.05

    def __post_init__(self) -> None:
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.max_backoff_exponent < 0:
            raise ValueError("max_backoff_exponent must be non-negative")
        if self.orphan_lease <= 0:
            raise ValueError("orphan_lease must be positive")
        if self.retry_delay <= 0:
            raise ValueError("retry_delay must be positive")

    def timeout_for(self, retries: int) -> float:
        """Pending-age timeout for a client with *retries* prior aborts."""
        exponent = min(retries, self.max_backoff_exponent)
        return self.request_timeout * self.backoff_factor**exponent

    def restart_delay_for(self, attempt: int, base_delay: float) -> float:
        """Driver-side backoff before retry *attempt* (1-based)."""
        exponent = min(max(attempt - 1, 0), self.max_backoff_exponent)
        return max(base_delay, self.retry_delay) * self.backoff_factor**exponent
