"""AST lints for determinism and concurrency hazards in ``src/repro``.

The repo's headline invariant is byte-identical determinism: seeded
runs, recorded traces, and cross-backend sweeps all compare exact
output.  That breaks the moment the *deterministic core* — the virtual
-time simulator, the scheduler and its stores, the relalg engine, the
fault planner, and the shard router (``sim/``, ``core/``, ``relalg/``,
``faults/``, ``shard/``) — reads a wall clock, draws from the global
RNG, or iterates an unordered set.  The serving layer additionally must
not block its event loop.  These rules are enforced here, statically:

====  ===============================================================
R301  wall-clock reads (``time.time``/``time_ns``, ``datetime.now``)
      in the deterministic core.  ``perf_counter`` is allowed — it
      feeds telemetry only, never control flow or output.
R302  global-RNG draws (module-level ``random.*`` functions) in the
      deterministic core.  Instantiating seeded ``random.Random``
      streams is the sanctioned pattern and is allowed.
R303  ``for``/comprehension iteration directly over a set literal,
      set comprehension, or ``set()``/``frozenset()`` call in the
      deterministic core — iteration order is salted per process.
      Wrap in ``sorted(...)`` (or iterate a list/dict instead).
R304  blocking calls (``time.sleep``) inside ``async def`` bodies
      under ``serve/`` — they stall every session on the loop.
R305  module lacks a docstring (whole package).
R306  a package ``__init__.py`` that imports names but defines no
      ``__all__`` (whole package).
====  ===============================================================

A finding on a specific line is suppressed by a same-line marker
comment naming the rule: ``# repro: allow[R303]``.  Suppressions are
deliberate and visible in review; the CI gate runs ``repro analyze
--strict`` so new findings must be fixed or explicitly allowed.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Optional

from repro.analysis.diagnostics import Diagnostic

__all__ = [
    "DETERMINISTIC_DIRS",
    "lint_source",
    "lint_repo",
]

#: Top-level ``repro`` subpackages holding the deterministic core.
DETERMINISTIC_DIRS = ("core", "faults", "relalg", "shard", "sim")

#: ``time`` attributes that read the wall clock (``perf_counter`` and
#: ``monotonic`` are telemetry-grade and allowed).
_WALL_CLOCK_ATTRS = frozenset({"time", "time_ns"})
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
#: ``random`` attributes that are *not* global-RNG draws.
_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})

_ALLOW = re.compile(r"#\s*repro:\s*allow\[([A-Z]\d{3})\]")


def _suppressions(source: str) -> dict[int, set[str]]:
    """line number -> rule ids allowed on that line."""
    allowed: dict[int, set[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        for match in _ALLOW.finditer(line):
            allowed.setdefault(number, set()).add(match.group(1))
    return allowed


class _ImportMap(ast.NodeVisitor):
    """Track how wall-clock/RNG modules are reachable in this module."""

    def __init__(self) -> None:
        #: local alias -> canonical module ("time", "random", "datetime").
        self.modules: dict[str, str] = {}
        #: local name -> ("module", attribute) for from-imports.
        self.names: dict[str, tuple[str, str]] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in ("time", "random", "datetime"):
                self.modules[alias.asname or root] = root

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in ("time", "random", "datetime"):
            for alias in node.names:
                self.names[alias.asname or alias.name] = (
                    node.module,
                    alias.name,
                )


def _call_target(
    call: ast.Call, imports: _ImportMap
) -> Optional[tuple[str, str]]:
    """Resolve a call to ``(module, attribute)`` when statically known."""
    fn = call.func
    if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
        module = imports.modules.get(fn.value.id)
        if module is not None:
            return module, fn.attr
        # ``datetime.datetime.now`` style: Name is a from-import alias.
        origin = imports.names.get(fn.value.id)
        if origin is not None:
            return f"{origin[0]}.{origin[1]}", fn.attr
    if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Attribute):
        inner = fn.value
        if isinstance(inner.value, ast.Name):
            module = imports.modules.get(inner.value.id)
            if module is not None:
                return f"{module}.{inner.attr}", fn.attr
    if isinstance(fn, ast.Name):
        origin = imports.names.get(fn.id)
        if origin is not None:
            return origin
    return None


def _is_set_expression(node: ast.expr, imports: _ImportMap) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            # Builtin unless shadowed by an import.
            return node.func.id not in imports.names
    return False


class _Linter(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        imports: _ImportMap,
        deterministic: bool,
        serve: bool,
    ) -> None:
        self.path = path
        self.imports = imports
        self.deterministic = deterministic
        self.serve = serve
        self.findings: list[tuple[str, int, str]] = []
        self._async_depth = 0

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append((rule, getattr(node, "lineno", 0), message))

    # -- function nesting (for R304's coroutine scope) -------------------

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._async_depth += 1
        self.generic_visit(node)
        self._async_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested sync def is its own (non-blocking-scope) context.
        depth, self._async_depth = self._async_depth, 0
        self.generic_visit(node)
        self._async_depth = depth

    # -- calls ------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        target = _call_target(node, self.imports)
        if target is not None:
            module, attribute = target
            if self.deterministic:
                if module == "time" and attribute in _WALL_CLOCK_ATTRS:
                    self._flag(
                        "R301",
                        node,
                        f"wall-clock read time.{attribute}() — the "
                        "deterministic core must take time from the "
                        "simulator clock",
                    )
                if (
                    module in ("datetime", "datetime.datetime")
                    and attribute in _DATETIME_ATTRS
                ):
                    self._flag(
                        "R301",
                        node,
                        f"wall-clock read datetime.{attribute}()",
                    )
                if module == "random" and attribute not in _RANDOM_ALLOWED:
                    self._flag(
                        "R302",
                        node,
                        f"global RNG draw random.{attribute}() — use a "
                        "seeded random.Random stream",
                    )
            if self.serve and self._async_depth > 0:
                if module == "time" and attribute == "sleep":
                    self._flag(
                        "R304",
                        node,
                        "time.sleep() inside a coroutine blocks the "
                        "event loop; await asyncio.sleep() instead",
                    )
        self.generic_visit(node)

    # -- set iteration -----------------------------------------------------

    def _check_iter(self, iterable: ast.expr) -> None:
        if self.deterministic and _is_set_expression(
            iterable, self.imports
        ):
            self._flag(
                "R303",
                iterable,
                "iterating an unordered set; wrap in sorted(...) to fix "
                "the order",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)


def lint_source(source: str, path: str) -> list[Diagnostic]:
    """Lint one module's source; *path* is repo-relative and decides
    which rule sets apply (deterministic core / serve / everywhere)."""
    parts = Path(path).parts
    try:
        anchor = parts.index("repro")
        subpath = parts[anchor + 1 :]
    except ValueError:
        subpath = parts
    deterministic = bool(subpath) and subpath[0] in DETERMINISTIC_DIRS
    serve = bool(subpath) and subpath[0] == "serve"

    try:
        tree = ast.parse(source)
    except SyntaxError as error:  # pragma: no cover - repo always parses
        return [
            Diagnostic(
                "R305",
                path,
                f"module does not parse: {error}",
                location=f"{path}:{error.lineno or 0}",
            )
        ]

    imports = _ImportMap()
    imports.visit(tree)
    linter = _Linter(path, imports, deterministic, serve)
    linter.visit(tree)

    findings = list(linter.findings)
    if ast.get_docstring(tree) is None:
        findings.append(("R305", 1, "module has no docstring"))
    if Path(path).name == "__init__.py":
        has_imports = any(
            isinstance(node, (ast.Import, ast.ImportFrom))
            for node in tree.body
        )
        defines_all = any(
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            )
            for node in tree.body
        )
        if has_imports and not defines_all:
            findings.append(
                ("R306", 1, "package __init__ re-exports without __all__")
            )

    allowed = _suppressions(source)
    out = []
    for rule, line, message in findings:
        if rule in allowed.get(line, ()):
            continue
        out.append(
            Diagnostic(rule, path, message, location=f"{path}:{line}")
        )
    return out


def lint_repo(root: Optional[Path] = None) -> list[Diagnostic]:
    """Lint every module under ``src/repro`` (or *root*)."""
    if root is None:
        root = Path(__file__).resolve().parent.parent
    base = root.parent  # .../src — keep paths repo-ish ("repro/...")
    findings: list[Diagnostic] = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(base).as_posix()
        findings.extend(lint_source(path.read_text(), relative))
    return findings
