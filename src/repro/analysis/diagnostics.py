"""Structured diagnostics shared by every analysis pass.

A :class:`Diagnostic` is one finding: a stable rule id (catalogued in
:data:`RULES`), a severity, the subject it is about (a spec name, a
``spec/dialect`` pair, or a repo-relative file path), an optional
location (``file:line`` for repo lints, an operator path for plan
passes) and a human message.  The CLI renders findings grouped by rule
and the ``--json`` artifact serializes them verbatim, so rule ids — not
message text — are the stable interface (see ``docs/analysis.md``).

Severity semantics: ``error`` findings always fail ``repro analyze``;
``warning`` findings fail only under ``--strict``; ``info`` entries
(the D1xx lowerability refusal reasons) never fail — they *explain* a
static prediction rather than flag a defect, and surface inside
refusal messages and the matrix report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Diagnostic",
    "RULES",
    "ERROR",
    "WARNING",
    "INFO",
    "severity_of",
]

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: rule id -> (severity, one-line title).  The catalogue of record;
#: docs/analysis.md mirrors it and tests assert full rule coverage.
RULES: dict[str, tuple[str, str]] = {
    # -- spec/plan verifier (S0xx) ---------------------------------------
    "S001": (ERROR, "dialect projection differs from the Table 2 columns"),
    "S002": (ERROR, "datalog dialect does not derive qualified/5"),
    "S003": (ERROR, "operation literals inconsistent with the LockModel"),
    "S004": (ERROR, "schema error in a spec dialect"),
    "S005": (ERROR, "statically ill-typed expression in a spec dialect"),
    # -- delta lowerability (D1xx; info = refusal explanations) ----------
    "D100": (ERROR, "static lowerability disagrees with trial-lowering"),
    "D101": (INFO, "LIMIT is order-dependent and has no delta lowering"),
    "D102": (INFO, "join shape has no delta lowering (keys/predicate)"),
    "D103": (INFO, "operator has no delta lowering"),
    "D104": (INFO, "unknown aggregate function"),
    "D105": (INFO, "set operation arity mismatch"),
    "D106": (INFO, "plan does not build/resolve against the Table 2 schema"),
    # -- plan lints (P2xx) -----------------------------------------------
    "P201": (WARNING, "declared CTE is never referenced"),
    "P202": (WARNING, "dead filter (constant or self-comparing predicate)"),
    "P203": (WARNING, "inner join has no equality key (nested loop)"),
    # -- repo determinism/concurrency lints (R3xx) -----------------------
    "R301": (ERROR, "wall-clock read in the deterministic core"),
    "R302": (ERROR, "global RNG use in the deterministic core"),
    "R303": (ERROR, "iteration over an unordered set in the deterministic core"),
    "R304": (ERROR, "blocking call inside a serve/ coroutine"),
    "R305": (WARNING, "module has no docstring"),
    "R306": (WARNING, "package __init__ re-exports without __all__"),
}


def severity_of(rule: str) -> str:
    return RULES[rule][0]


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One analysis finding, ready for rendering or JSON export."""

    rule: str
    subject: str
    message: str
    #: ``file:line`` for repo lints; an ``a > b > c`` operator path for
    #: plan/lowerability passes; empty when neither applies.
    location: str = ""
    severity: str = field(default="")

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown analysis rule id {self.rule!r}")
        if not self.severity:
            object.__setattr__(self, "severity", severity_of(self.rule))

    def render(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return f"{self.rule} {self.subject}: {self.message}{where}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "subject": self.subject,
            "message": self.message,
            "location": self.location,
        }
