"""Schema and type inference over relalg logical plans.

The relalg IR resolves column *positions* lazily (at compile/execute
time), so a mis-spelled column or an ``int``-vs-``str`` comparison in a
registered spec only surfaces when the plan first runs.  This pass
walks a :class:`~repro.relalg.query.PlanNode` tree once, statically:

* it threads a :class:`TypedSchema` — the ordinary
  :class:`~repro.relalg.schema.Schema` plus a per-column type and a
  nullability bit (the padded side of a left join) — bottom-up through
  every operator, exactly mirroring the schema algebra the executor
  applies (qualify / concat / project / unqualify / rename);
* every column reference is resolved eagerly, turning latent
  :class:`~repro.relalg.schema.SchemaError`\\s into ``S004`` findings
  with the offending operator named;
* expressions are typed (``S005`` when two statically-known,
  incomparable types are compared, added, or tested with ``IN``).

Types form the small lattice ``int/float/str/bool`` below ``any``
(unknown, never flagged) with ``null`` for the literal ``None``.  Base
tables carrying the paper's Table 2 columns are seeded from
:data:`TABLE2_TYPES`; anything else starts at ``any``, so inference is
conservative: a finding means a real inconsistency, silence does not
prove typability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.diagnostics import Diagnostic
from repro.core.stores import REQUEST_COLUMNS
from repro.relalg.expressions import (
    And,
    Arith,
    ColumnRef,
    Compare,
    Expr,
    Func,
    InSet,
    IsNull,
    Literal,
    Not,
    Or,
)
from repro.relalg.operators import _AGGREGATES, _split, resolve_sort_keys
from repro.relalg.query import (
    AggregateNode,
    CTENode,
    DistinctNode,
    ExtendNode,
    FilterNode,
    JoinNode,
    LimitNode,
    OrderByNode,
    PlanNode,
    ProjectNode,
    SetOpNode,
    SourceNode,
    _AliasNode,
)
from repro.relalg.schema import Column, Schema, SchemaError
from repro.relalg.table import Table

__all__ = [
    "TABLE2_TYPES",
    "TypedSchema",
    "Inference",
    "infer_plan",
    "table2_projection_ok",
]

#: Column types of the paper's Table 2 request/history relations.
TABLE2_TYPES: dict[str, str] = {
    "id": "int",
    "ta": "int",
    "intrata": "int",
    "operation": "str",
    "object": "int",
}

_NUMERIC = frozenset({"int", "float"})


def _comparable(left: str, right: str) -> bool:
    """May values of these two inferred types ever compare equal/ordered?"""
    if "any" in (left, right) or "null" in (left, right):
        return True
    if left == right:
        return True
    return left in _NUMERIC and right in _NUMERIC


def _python_type(value: object) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    return "any"


@dataclass(frozen=True, slots=True)
class TypedSchema:
    """A schema with one inferred type and nullability bit per column."""

    schema: Schema
    types: tuple[str, ...]
    nullable: tuple[bool, ...]

    @classmethod
    def untyped(cls, schema: Schema) -> "TypedSchema":
        n = schema.arity
        return cls(schema, ("any",) * n, (False,) * n)

    def with_schema(self, schema: Schema) -> "TypedSchema":
        """Same types/nullability under renamed/requalified columns."""
        return TypedSchema(schema, self.types, self.nullable)

    def concat(self, other: "TypedSchema") -> "TypedSchema":
        return TypedSchema(
            self.schema.concat(other.schema),
            self.types + other.types,
            self.nullable + other.nullable,
        )

    def all_nullable(self) -> "TypedSchema":
        return TypedSchema(self.schema, self.types, (True,) * self.schema.arity)

    def type_at(self, position: int) -> str:
        return self.types[position]


@dataclass(slots=True)
class Inference:
    """Result of :func:`infer_plan`: the output typing + findings."""

    typed: TypedSchema
    diagnostics: list[Diagnostic]

    @property
    def schema(self) -> Schema:
        return self.typed.schema

    @property
    def ok(self) -> bool:
        return not self.diagnostics


class _Inferencer:
    """One inference walk; memoized so shared CTE subtrees type once."""

    def __init__(self, subject: str) -> None:
        self.subject = subject
        self.diagnostics: list[Diagnostic] = []
        self._memo: dict[int, TypedSchema] = {}
        self._path: list[str] = []

    # -- reporting --------------------------------------------------------

    def _where(self) -> str:
        return " > ".join(self._path)

    def _report(self, rule: str, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(rule, self.subject, message, location=self._where())
        )

    def _resolve(self, typed: TypedSchema, name: str) -> Optional[int]:
        """Resolve a possibly-qualified column name; S004 on failure."""
        try:
            return typed.schema.resolve(*_split(name))
        except SchemaError as error:
            self._report("S004", str(error))
            return None

    # -- expressions ------------------------------------------------------

    def infer_expr(self, expr: Expr, typed: TypedSchema) -> str:
        if isinstance(expr, ColumnRef):
            try:
                pos = typed.schema.resolve(expr.name, expr.qualifier)
            except SchemaError as error:
                self._report("S004", str(error))
                return "any"
            return typed.type_at(pos)
        if isinstance(expr, Literal):
            return _python_type(expr.value)
        if isinstance(expr, Compare):
            left = self.infer_expr(expr.left, typed)
            right = self.infer_expr(expr.right, typed)
            if not _comparable(left, right):
                self._report(
                    "S005",
                    f"comparison {expr!r} can never hold: "
                    f"{left} {expr.symbol} {right}",
                )
            return "bool"
        if isinstance(expr, Arith):
            left = self.infer_expr(expr.left, typed)
            right = self.infer_expr(expr.right, typed)
            for side in (left, right):
                if side == "bool" or (
                    side == "str" and {left, right} & _NUMERIC
                ):
                    self._report(
                        "S005",
                        f"arithmetic {expr!r} over {left}/{right} operands",
                    )
                    return "any"
            if "float" in (left, right):
                return "float"
            if left == right == "int":
                return "int"
            if left == right == "str":
                return "str"  # concatenation
            return "any"
        if isinstance(expr, (And, Or)):
            for part in expr.parts:
                self.infer_expr(part, typed)
            return "bool"
        if isinstance(expr, Not):
            self.infer_expr(expr.inner, typed)
            return "bool"
        if isinstance(expr, IsNull):
            self.infer_expr(expr.inner, typed)
            return "bool"
        if isinstance(expr, InSet):
            inner = self.infer_expr(expr.inner, typed)
            element_types = {_python_type(v) for v in expr.values}
            if inner not in ("any", "null") and not any(
                _comparable(inner, t) for t in element_types
            ):
                self._report(
                    "S005",
                    f"membership test {expr!r}: {inner} column against "
                    f"{sorted(element_types)} values",
                )
            return "bool"
        if isinstance(expr, Func):
            for ref in expr.columns:
                self.infer_expr(ref, typed)
            return "any"
        return "any"

    # -- plans ------------------------------------------------------------

    def infer(self, node: PlanNode) -> TypedSchema:
        done = self._memo.get(id(node))
        if done is not None:
            return done
        self._path.append(node._describe())
        try:
            typed = self._infer(node)
        finally:
            self._path.pop()
        self._memo[id(node)] = typed
        return typed

    def _infer(self, node: PlanNode) -> TypedSchema:
        if isinstance(node, SourceNode):
            schema = node.output_schema()
            names = schema.names
            if isinstance(node.source, Table) and set(names) <= set(
                TABLE2_TYPES
            ):
                types = tuple(TABLE2_TYPES[name] for name in names)
                return TypedSchema(schema, types, (False,) * len(types))
            return TypedSchema.untyped(schema)
        if isinstance(node, _AliasNode):
            child = self.infer(node.child)
            return child.with_schema(child.schema.qualify(node.alias))
        if isinstance(node, CTENode):
            return self.infer(node.child)
        if isinstance(node, FilterNode):
            child = self.infer(node.child)
            self.infer_expr(node.predicate, child)
            return child
        if isinstance(node, ProjectNode):
            child = self.infer(node.child)
            columns, types, nullable = [], [], []
            for name in node.columns:
                pos = self._resolve(child, name)
                columns.append(Column(_split(name)[0]))
                types.append("any" if pos is None else child.types[pos])
                nullable.append(False if pos is None else child.nullable[pos])
            return TypedSchema(Schema(columns), tuple(types), tuple(nullable))
        if isinstance(node, ExtendNode):
            child = self.infer(node.child)
            extended = self.infer_expr(node.expr, child)
            return TypedSchema(
                Schema(list(child.schema.columns) + [Column(node.name)]),
                child.types + (extended,),
                child.nullable + (False,),
            )
        if isinstance(node, (DistinctNode,)):
            return self.infer(node.child)
        if isinstance(node, OrderByNode):
            child = self.infer(node.child)
            try:
                resolve_sort_keys(child.schema, node.keys)
            except SchemaError as error:
                self._report("S004", str(error))
            return child
        if isinstance(node, LimitNode):
            return self.infer(node.child)
        if isinstance(node, AggregateNode):
            child = self.infer(node.child)
            columns, types, nullable = [], [], []
            for group in node.group_by:
                pos = self._resolve(child, group)
                columns.append(Column(_split(group)[0]))
                types.append("any" if pos is None else child.types[pos])
                nullable.append(False)
            for fn_name, input_col, output_name in node.aggregations:
                if fn_name not in _AGGREGATES:
                    self._report("S004", f"unknown aggregate {fn_name!r}")
                    input_type = "any"
                elif fn_name == "count" and input_col == "*":
                    input_type = "any"
                else:
                    pos = self._resolve(child, input_col)
                    input_type = "any" if pos is None else child.types[pos]
                if fn_name == "count":
                    out_type = "int"
                elif fn_name == "avg":
                    out_type = "float"
                else:  # sum/min/max keep the input type
                    out_type = input_type
                columns.append(Column(output_name))
                types.append(out_type)
                nullable.append(False)
            return TypedSchema(Schema(columns), tuple(types), tuple(nullable))
        if isinstance(node, SetOpNode):
            left = self.infer(node.left)
            right = self.infer(node.right)
            if left.schema.arity != right.schema.arity:
                self._report(
                    "S004",
                    f"{node.kind}: arity mismatch "
                    f"{left.schema.arity} vs {right.schema.arity}",
                )
                return left
            types = tuple(
                lt if _comparable(lt, rt) and lt == rt else "any"
                for lt, rt in zip(left.types, right.types)
            )
            nullable = tuple(
                ln or rn for ln, rn in zip(left.nullable, right.nullable)
            )
            return TypedSchema(left.schema, types, nullable)
        if isinstance(node, JoinNode):
            left = self.infer(node.left)
            right = self.infer(node.right)
            combined = left.concat(
                right.all_nullable() if node.how == "left" else right
            )
            if node.predicate is not None:
                self.infer_expr(node.predicate, combined)
            if node.how in ("semi", "anti"):
                return left
            return combined
        # SQL planner internals are structural wrappers; import lazily to
        # keep this module off the sql parser unless such nodes appear.
        from repro.relalg import sql as _sql

        if isinstance(node, _sql._UnqualifyNode):
            child = self.infer(node.child)
            return child.with_schema(child.schema.unqualified())
        if isinstance(node, _sql._RenameColumnsNode):
            child = self.infer(node.child)
            renamed = Schema(
                [
                    Column(new_name) if new_name else column
                    for column, new_name in zip(
                        child.schema.columns, node.renames
                    )
                ]
            )
            return child.with_schema(renamed)
        if isinstance(node, _sql._UncorrelatedExistsNode):
            self.infer(node.right)
            return self.infer(node.left)
        # Unknown node: fall back to its own declared schema, untyped.
        return TypedSchema.untyped(node.output_schema())


def infer_plan(node: PlanNode, subject: str = "<plan>") -> Inference:
    """Infer the typed output schema of *node*, collecting findings.

    Never raises for analyzable plans: schema failures become ``S004``
    findings (typed ``any`` past the failure point) and type conflicts
    become ``S005``, so one walk reports every independent defect.
    """
    walker = _Inferencer(subject)
    typed = walker.infer(node)
    return Inference(typed, walker.diagnostics)


def table2_projection_ok(inference: Inference) -> bool:
    """Does the inferred output match the Table 2 request projection?"""
    return inference.schema.names == tuple(REQUEST_COLUMNS)
