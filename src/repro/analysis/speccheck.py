"""Cross-dialect consistency checks for registered protocol specs.

A :class:`~repro.protocols.spec.ProtocolSpec` states the *same*
qualification rule in several dialects; the equivalence sweep proves
them equal on randomized workloads, but only at runtime.  This pass
checks the statically checkable half of that contract per spec:

* **S001** — every analyzable query dialect (relalg builder, SQL text)
  must project exactly the Table 2 request columns
  (``id, ta, intrata, operation, object``), the shape
  ``Request.from_row`` and the scheduler dispatch path assume.
* **S002** — the datalog dialect must derive ``qualified/5``.
* **S003** — the operation codes each dialect consults must be
  consistent with the spec's :class:`~repro.protocols.spec.LockModel`:
  a model with any conflict check needs the write code (``'w'``) and
  the termination codes (``'a'``, ``'c'``) — write locks are derived
  from unfinished write rows — while a no-locks model must consult no
  operation codes at all.  Read codes are deliberately *not* required:
  Listing 1 derives read locks implicitly (unfinished rows minus
  writes) without ever testing ``operation = 'r'``.
* **S004/S005** — schema and type findings from
  :mod:`repro.analysis.inference` over each dialect's plan.

Plan-level lints ride the same walk: **P201** (a ``WITH`` CTE that no
part of the statement references), **P202** (a filter whose predicate
is constant or compares a column with itself), **P203** (an inner join
that keeps no equality key *after* optimization and therefore runs as
a nested loop).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.inference import infer_plan, table2_projection_ok
from repro.core.stores import REQUEST_COLUMNS
from repro.protocols.spec import SPEC_REGISTRY, LockModel, ProtocolSpec
from repro.relalg.expressions import (
    ColumnRef,
    Compare,
    Expr,
    InSet,
    Literal,
)
from repro.relalg.query import (
    CTENode,
    ExtendNode,
    FilterNode,
    JoinNode,
    PlanNode,
)
from repro.relalg.table import Table

__all__ = [
    "check_spec",
    "check_registry",
    "collect_expressions",
    "operation_literals",
]

#: The paper's single-letter operation codes (Table 2 / Listing 1).
_OPERATION_CODES = frozenset({"r", "w", "a", "c"})


def _dummy_tables() -> tuple[Table, Table]:
    return (
        Table("requests", list(REQUEST_COLUMNS)),
        Table("history", list(REQUEST_COLUMNS)),
    )


def _walk_plan(root: PlanNode) -> Iterable[PlanNode]:
    """Every node of the plan DAG, each shared subtree visited once."""
    seen: set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(node.children())


def collect_expressions(root: PlanNode) -> list[Expr]:
    """All scalar expressions attached to the plan's operators."""
    out: list[Expr] = []
    for node in _walk_plan(root):
        if isinstance(node, (FilterNode, JoinNode)):
            if node.predicate is not None:
                out.append(node.predicate)
        elif isinstance(node, ExtendNode):
            out.append(node.expr)
    return out


def _walk_expr(expr: Expr) -> Iterable[Expr]:
    yield expr
    for attr in ("left", "right", "inner"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expr):
            yield from _walk_expr(child)
    for child in getattr(expr, "parts", ()):
        yield from _walk_expr(child)
    for child in getattr(expr, "columns", ()):
        if isinstance(child, Expr):
            yield from _walk_expr(child)


def operation_literals(root: PlanNode) -> frozenset[str]:
    """Operation codes the plan compares the ``operation`` column to."""
    found: set[str] = set()
    for top in collect_expressions(root):
        for expr in _walk_expr(top):
            if isinstance(expr, Compare):
                for ref, lit in (
                    (expr.left, expr.right),
                    (expr.right, expr.left),
                ):
                    if (
                        isinstance(ref, ColumnRef)
                        and ref.name == "operation"
                        and isinstance(lit, Literal)
                        and lit.value in _OPERATION_CODES
                    ):
                        found.add(lit.value)
            elif isinstance(expr, InSet):
                if (
                    isinstance(expr.inner, ColumnRef)
                    and expr.inner.name == "operation"
                ):
                    found |= {
                        v for v in expr.values if v in _OPERATION_CODES
                    }
    return frozenset(found)


def _datalog_literals(source: str) -> frozenset[str]:
    """Operation codes a datalog program mentions as string constants."""
    from repro.datalog.ast import Comparison, Const
    from repro.datalog.parser import parse_program

    found: set[str] = set()
    for rule in parse_program(source):
        for atom in [rule.head] + [
            item.atom
            for item in rule.body
            if hasattr(item, "atom")
        ]:
            for term in atom.terms:
                if isinstance(term, Const) and term.value in _OPERATION_CODES:
                    found.add(term.value)
        for item in rule.body:
            if isinstance(item, Comparison):
                for side in (item.left, item.right):
                    if (
                        isinstance(side, Const)
                        and side.value in _OPERATION_CODES
                    ):
                        found.add(side.value)
    return frozenset(found)


def _required_codes(model: LockModel) -> frozenset[str]:
    """Codes every dialect of a spec with this lock model must consult."""
    checks = (
        model.reads_check_writers
        or model.writes_check_readers
        or model.writes_check_writers
    )
    if not checks:
        return frozenset()
    # Any conflict check needs write locks (derived from 'w' rows) and
    # the finished-transaction filter ('a'/'c' terminations).  Read
    # locks are derived without testing 'r' (see module docstring).
    return frozenset({"w", "a", "c"})


def _build_dialect_plans(
    spec: ProtocolSpec,
) -> tuple[dict[str, PlanNode], list[Diagnostic]]:
    """Plan each analyzable query dialect against dummy Table 2 stores."""
    plans: dict[str, PlanNode] = {}
    findings: list[Diagnostic] = []
    requests, history = _dummy_tables()
    if spec.relalg is not None:
        try:
            built = spec.relalg(requests, history)
            plans["relalg"] = built.plan if hasattr(built, "plan") else built
        except Exception as error:
            findings.append(
                Diagnostic(
                    "S004",
                    f"{spec.name}/relalg",
                    f"building the relalg plan failed: "
                    f"{type(error).__name__}: {error}",
                )
            )
    if spec.sql is not None:
        from repro.relalg.sql import SqlPlanner

        try:
            planner = SqlPlanner({"requests": requests, "history": history})
            plans["sql"] = planner.plan(spec.sql, defer_ctes=True)
        except Exception as error:
            findings.append(
                Diagnostic(
                    "S004",
                    f"{spec.name}/sql",
                    f"planning the sql dialect failed: "
                    f"{type(error).__name__}: {error}",
                )
            )
    return plans, findings


def _check_datalog(spec: ProtocolSpec) -> list[Diagnostic]:
    from repro.datalog.parser import parse_program

    subject = f"{spec.name}/datalog"
    try:
        rules = parse_program(spec.datalog)
    except Exception as error:
        return [
            Diagnostic(
                "S002",
                subject,
                f"datalog dialect does not parse: "
                f"{type(error).__name__}: {error}",
            )
        ]
    heads = [rule.head for rule in rules if rule.head.pred == "qualified"]
    if not heads:
        return [
            Diagnostic(
                "S002", subject, "no rule derives the qualified relation"
            )
        ]
    findings = []
    for head in heads:
        if head.arity != len(REQUEST_COLUMNS):
            findings.append(
                Diagnostic(
                    "S002",
                    subject,
                    f"qualified head has arity {head.arity}, expected "
                    f"{len(REQUEST_COLUMNS)} (Table 2 columns)",
                )
            )
    return findings


def _lint_unused_ctes(spec: ProtocolSpec, plan: PlanNode) -> list[Diagnostic]:
    # The parser's CTE list is the declaration site; CTENodes reachable
    # from the deferred plan are the references.  (_Parser is the sql
    # module's own; the lint deliberately reuses it rather than
    # re-tokenizing.)
    from repro.relalg.sql import _Parser

    declared = [name for name, __ in _Parser(spec.sql).statement().ctes]
    reachable = {
        node.name for node in _walk_plan(plan) if isinstance(node, CTENode)
    }
    return [
        Diagnostic(
            "P201",
            f"{spec.name}/sql",
            f"CTE {name!r} is declared but never referenced",
        )
        for name in declared
        if name not in reachable
    ]


def _same_column(left: Expr, right: Expr) -> bool:
    return (
        isinstance(left, ColumnRef)
        and isinstance(right, ColumnRef)
        and left.name == right.name
        and left.qualifier == right.qualifier
    )


def _lint_dead_filters(subject: str, plan: PlanNode) -> list[Diagnostic]:
    findings = []
    for node in _walk_plan(plan):
        if not isinstance(node, FilterNode):
            continue
        predicate = node.predicate
        if isinstance(predicate, Literal):
            verdict = "always true" if predicate.value else "always false"
            findings.append(
                Diagnostic(
                    "P202",
                    subject,
                    f"filter predicate {predicate!r} is constant "
                    f"({verdict})",
                )
            )
        elif isinstance(predicate, Compare) and _same_column(
            predicate.left, predicate.right
        ):
            findings.append(
                Diagnostic(
                    "P202",
                    subject,
                    f"filter compares a column with itself: {predicate!r}",
                )
            )
    return findings


def _lint_nested_loop_joins(
    subject: str, plan: PlanNode
) -> list[Diagnostic]:
    from repro.relalg.optimizer import optimize_plan, split_join_predicate
    from repro.relalg.plan import reduce_outer_joins

    try:
        optimized = reduce_outer_joins(optimize_plan(plan))
    except Exception:
        return []  # planning defects are reported as S004, not P203
    findings = []
    for node in _walk_plan(optimized):
        if not isinstance(node, JoinNode) or node.how != "inner":
            continue
        if node.predicate is None:
            continue  # an explicit cross join is presumed intentional
        try:
            left_keys, __, __ = split_join_predicate(
                node.predicate,
                node.left.output_schema(),
                node.right.output_schema(),
            )
        except Exception:
            continue
        if not left_keys:
            findings.append(
                Diagnostic(
                    "P203",
                    subject,
                    f"inner join keeps no equality key after "
                    f"optimization (nested loop): {node.predicate!r}",
                )
            )
    return findings


def check_spec(spec: ProtocolSpec) -> list[Diagnostic]:
    """All S0xx/P2xx findings for one spec."""
    plans, findings = _build_dialect_plans(spec)

    consulted: dict[str, frozenset[str]] = {}
    for dialect, plan in sorted(plans.items()):
        subject = f"{spec.name}/{dialect}"
        inference = infer_plan(plan, subject=subject)
        findings.extend(inference.diagnostics)
        if not table2_projection_ok(inference):
            findings.append(
                Diagnostic(
                    "S001",
                    subject,
                    f"projects {list(inference.schema.names)}, expected "
                    f"the Table 2 columns {list(REQUEST_COLUMNS)}",
                )
            )
        consulted[dialect] = operation_literals(plan)
        findings.extend(_lint_dead_filters(subject, plan))
        findings.extend(_lint_nested_loop_joins(subject, plan))

    if spec.sql is not None and "sql" in plans:
        findings.extend(_lint_unused_ctes(spec, plans["sql"]))

    if spec.datalog is not None:
        findings.extend(_check_datalog(spec))
        try:
            consulted["datalog"] = _datalog_literals(spec.datalog)
        except Exception:
            pass  # parse failures already reported as S002

    if spec.lock_model is not None:
        required = _required_codes(spec.lock_model)
        for dialect, codes in sorted(consulted.items()):
            subject = f"{spec.name}/{dialect}"
            missing = required - codes
            if missing:
                findings.append(
                    Diagnostic(
                        "S003",
                        subject,
                        f"lock model requires consulting operation codes "
                        f"{sorted(required)} but the dialect only tests "
                        f"{sorted(codes)} (missing {sorted(missing)})",
                    )
                )
            if not required and codes:
                findings.append(
                    Diagnostic(
                        "S003",
                        subject,
                        f"lock model checks no conflicts, yet the dialect "
                        f"branches on operation codes {sorted(codes)}",
                    )
                )
    return findings


def check_registry(
    specs: Optional[Iterable[ProtocolSpec]] = None,
) -> list[Diagnostic]:
    """Findings across every registered spec (registration imported)."""
    if specs is None:
        import repro.protocols  # noqa: F401  (populates SPEC_REGISTRY)

        specs = [SPEC_REGISTRY[name] for name in sorted(SPEC_REGISTRY)]
    findings: list[Diagnostic] = []
    for spec in specs:
        findings.extend(check_spec(spec))
    return findings
