"""Static analysis: spec/plan verification and repo determinism lints.

Two halves behind one report (CLI: ``repro analyze [--strict] [--json]``):

* the **spec/plan verifier** — schema/type inference over the relalg IR
  (:mod:`repro.analysis.inference`), cross-dialect consistency checks
  and plan lints for every registered spec
  (:mod:`repro.analysis.speccheck`), and the static delta-lowerability
  pass that predicts ``compiled-delta`` support without trial-lowering
  (:mod:`repro.analysis.lowerability`);
* the **repo lint** — an AST pass banning wall-clock, global-RNG and
  set-ordering hazards in the deterministic core and blocking calls in
  serve coroutines (:mod:`repro.analysis.repolint`).

:func:`run_analysis` is the aggregate entry the CLI and
:mod:`repro.api` call; the rule catalogue lives in
:mod:`repro.analysis.diagnostics` and is documented in
``docs/analysis.md``.  This package imports no execution backend at
module level — the backends import *it* (lazily) to enrich refusal
messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import RULES, Diagnostic
from repro.analysis.inference import (
    TABLE2_TYPES,
    Inference,
    TypedSchema,
    infer_plan,
)
from repro.analysis.lowerability import (
    LoweringPrediction,
    explain_refusal,
    predict_delta_lowerability,
    predict_plan_lowerability,
    predicted_backend_matrix,
)
from repro.analysis.repolint import lint_repo, lint_source
from repro.analysis.speccheck import check_registry, check_spec

__all__ = [
    "Diagnostic",
    "RULES",
    "TABLE2_TYPES",
    "Inference",
    "TypedSchema",
    "LoweringPrediction",
    "AnalysisReport",
    "infer_plan",
    "predict_plan_lowerability",
    "predict_delta_lowerability",
    "predicted_backend_matrix",
    "explain_refusal",
    "check_spec",
    "check_registry",
    "lint_repo",
    "lint_source",
    "run_analysis",
]


@dataclass(slots=True)
class AnalysisReport:
    """Every finding of one full analysis run, plus the support matrix."""

    findings: list[Diagnostic] = field(default_factory=list)
    #: spec -> backend -> statically predicted support (when computed).
    matrix: dict[str, dict[str, bool]] = field(default_factory=dict)

    @property
    def errors(self) -> list[Diagnostic]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [f for f in self.findings if f.severity == "warning"]

    def ok(self, strict: bool = False) -> bool:
        if self.errors:
            return False
        return not (strict and self.warnings)

    def as_dict(self) -> dict:
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.as_dict() for f in self.findings],
            "matrix": self.matrix,
        }


def _check_matrix_agreement(
    matrix: dict[str, dict[str, bool]]
) -> list[Diagnostic]:
    """D100 when a static prediction disagrees with a live backend."""
    from repro.backends.base import BACKEND_REGISTRY
    from repro.protocols.spec import SPEC_REGISTRY

    findings = []
    for spec_name, row in matrix.items():
        spec = SPEC_REGISTRY[spec_name]
        for backend_name, predicted in row.items():
            actual = BACKEND_REGISTRY[backend_name]().supports(spec)
            if actual != predicted:
                findings.append(
                    Diagnostic(
                        "D100",
                        f"{spec_name} × {backend_name}",
                        f"static analysis predicts "
                        f"{'support' if predicted else 'refusal'} but the "
                        f"backend declares "
                        f"{'support' if actual else 'refusal'}",
                        severity="error",
                    )
                )
    return findings


def run_analysis(specs: bool = True, repo: bool = True) -> AnalysisReport:
    """Run the selected analysis halves and aggregate their findings.

    The spec half also computes the predicted spec × backend support
    matrix and cross-checks it against the live backends' ``supports()``
    answers (rule D100), so ``repro analyze`` catches static/dynamic
    lowerability drift without waiting for the test suite.
    """
    report = AnalysisReport()
    if specs:
        import repro.backends  # noqa: F401  (registers the backends)
        import repro.protocols  # noqa: F401  (registers the specs)

        report.findings.extend(check_registry())
        report.matrix = predicted_backend_matrix()
        report.findings.extend(_check_matrix_agreement(report.matrix))
    if repo:
        report.findings.extend(lint_repo())
    return report
