"""Static delta-lowerability: predict ``compiled-delta`` support.

:class:`~repro.backends.delta.CompiledDeltaBackend` declares support by
*trial-lowering* each spec at runtime.  This pass predicts the same
verdict without building a single delta operator: it walks the spec's
logical plan — after the same ``reduce_outer_joins(optimize_plan(...))``
rewrite :class:`~repro.relalg.delta.DeltaPlan` applies — and mirrors
every refusal site of :meth:`repro.relalg.delta._Lowering._lower`
node for node:

====  ==============================================================
D101  ``LIMIT`` (order-dependent, no incremental form)
D102  unlowerable join shape (key-less outer join, predicate-less
      semi/anti join)
D103  an operator class with no delta lowering at all
D104  an unknown aggregate function
D105  set-operation arity mismatch
D106  the plan fails to build or resolve against the Table 2 schema
      (planner errors, unknown columns — anything the dynamic path's
      broad ``except`` would also catch)
====  ==============================================================

Each refusal carries the operator path from the plan root to the
offending node (``CTE(x) > Join[left](...) > Limit(3)``), which is what
the enriched :class:`~repro.relalg.delta.DeltaLoweringError` and
:class:`~repro.backends.base.BackendError` messages cite.

The matrix test asserts :func:`predict_delta_lowerability` agrees with
dynamic trial-lowering on **every** registered spec, in both
directions, so the mirror cannot silently drift from the real lowering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.core.stores import REQUEST_COLUMNS
from repro.protocols.spec import SPEC_REGISTRY, ProtocolSpec
from repro.relalg.expressions import compile_expr
from repro.relalg.operators import _AGGREGATES, _split, resolve_sort_keys
from repro.relalg.query import (
    AggregateNode,
    CTENode,
    DistinctNode,
    ExtendNode,
    FilterNode,
    JoinNode,
    LimitNode,
    OrderByNode,
    PlanNode,
    ProjectNode,
    SetOpNode,
    SourceNode,
    _AliasNode,
)
from repro.relalg.schema import Column, Schema
from repro.relalg.table import Table

__all__ = [
    "LoweringPrediction",
    "predict_plan_lowerability",
    "predict_delta_lowerability",
    "predicted_backend_matrix",
    "explain_refusal",
]


@dataclass(frozen=True, slots=True)
class LoweringPrediction:
    """Static verdict for one plan (or one spec) on ``compiled-delta``."""

    lowerable: bool
    #: The D1xx refusal when not lowerable (first failure, like the
    #: dynamic path); None when lowerable.
    refusal: Optional[Diagnostic] = None

    @property
    def reason(self) -> str:
        return self.refusal.render() if self.refusal else ""


class _Refusal(Exception):
    """Internal: carries the D1xx diagnostic out of the mirror walk."""

    def __init__(self, diagnostic: Diagnostic) -> None:
        super().__init__(diagnostic.render())
        self.diagnostic = diagnostic


class _Mirror:
    """Schema-only replay of :class:`repro.relalg.delta._Lowering`.

    Threads schemas through the plan with the exact resolution calls the
    real lowering makes (``compile_expr``, ``Schema.resolve``,
    ``split_join_predicate``) but builds no operators — any exception a
    resolution raises is folded into D106, matching the dynamic path's
    broad failure handling.
    """

    def __init__(self, subject: str) -> None:
        self.subject = subject
        self._memo: dict[int, Schema] = {}
        self._path: list[str] = []

    def _refuse(self, rule: str, message: str) -> "_Refusal":
        return _Refusal(
            Diagnostic(
                rule,
                self.subject,
                message,
                location=" > ".join(self._path),
            )
        )

    def _resolved(self, fn: Callable[[], object], context: str) -> object:
        try:
            return fn()
        except _Refusal:
            raise
        except Exception as error:  # mirror the dynamic broad except
            raise self._refuse(
                "D106", f"{context}: {type(error).__name__}: {error}"
            ) from None

    def lower(self, node: PlanNode) -> Schema:
        done = self._memo.get(id(node))
        if done is not None:
            return done
        self._path.append(node._describe())
        try:
            schema = self._lower(node)
        finally:
            self._path.pop()
        self._memo[id(node)] = schema
        return schema

    def _lower(self, node: PlanNode) -> Schema:
        if isinstance(node, SourceNode):
            return node.output_schema()
        if isinstance(node, _AliasNode):
            return self.lower(node.child).qualify(node.alias)
        if isinstance(node, CTENode):
            return self.lower(node.child)
        if isinstance(node, FilterNode):
            schema = self.lower(node.child)
            self._resolved(
                lambda: compile_expr(node.predicate, schema, predicate=True),
                "filter predicate",
            )
            return schema
        if isinstance(node, ProjectNode):
            schema = self.lower(node.child)
            self._resolved(
                lambda: [schema.resolve(*_split(c)) for c in node.columns],
                "projection",
            )
            return Schema([Column(_split(c)[0]) for c in node.columns])
        if isinstance(node, ExtendNode):
            schema = self.lower(node.child)
            self._resolved(
                lambda: compile_expr(node.expr, schema), "extend expression"
            )
            return Schema(list(schema.columns) + [Column(node.name)])
        if isinstance(node, DistinctNode):
            return self.lower(node.child)
        if isinstance(node, OrderByNode):
            schema = self.lower(node.child)
            self._resolved(
                lambda: resolve_sort_keys(schema, node.keys), "sort keys"
            )
            return schema
        if isinstance(node, LimitNode):
            raise self._refuse(
                "D101", "LIMIT is order-dependent and has no delta lowering"
            )
        if isinstance(node, AggregateNode):
            schema = self.lower(node.child)
            self._resolved(
                lambda: [schema.resolve(*_split(g)) for g in node.group_by],
                "aggregate grouping",
            )
            for fn_name, input_col, __ in node.aggregations:
                if fn_name not in _AGGREGATES:
                    raise self._refuse(
                        "D104", f"unknown aggregate {fn_name!r}"
                    )
                if not (fn_name == "count" and input_col == "*"):
                    self._resolved(
                        lambda col=input_col: schema.resolve(*_split(col)),
                        "aggregate input",
                    )
            return Schema(
                [Column(_split(g)[0]) for g in node.group_by]
                + [Column(name) for __, __, name in node.aggregations]
            )
        if isinstance(node, SetOpNode):
            left = self.lower(node.left)
            right = self.lower(node.right)
            if left.arity != right.arity:
                raise self._refuse(
                    "D105",
                    f"{node.kind}: arity mismatch {left.arity} vs "
                    f"{right.arity}",
                )
            return left
        if isinstance(node, JoinNode):
            return self._lower_join(node)
        from repro.relalg import sql as _sql

        if isinstance(node, _sql._UnqualifyNode):
            return self.lower(node.child).unqualified()
        if isinstance(node, _sql._RenameColumnsNode):
            schema = self.lower(node.child)
            return Schema(
                [
                    Column(new_name) if new_name else column
                    for column, new_name in zip(schema.columns, node.renames)
                ]
            )
        if isinstance(node, _sql._UncorrelatedExistsNode):
            left = self.lower(node.left)
            self.lower(node.right)
            return left
        raise self._refuse(
            "D103", f"no delta lowering for {type(node).__name__}"
        )

    def _lower_join(self, node: JoinNode) -> Schema:
        from repro.relalg.optimizer import split_join_predicate

        left = self.lower(node.left)
        right = self.lower(node.right)
        split = self._resolved(
            lambda: split_join_predicate(node.predicate, left, right),
            "join predicate",
        )
        left_keys, __, residual = split
        combined = left.concat(right)
        if residual is not None:
            self._resolved(
                lambda: compile_expr(residual, combined, predicate=True),
                "join residual",
            )
        if node.how == "inner":
            if not left_keys and node.predicate is not None:
                self._resolved(
                    lambda: compile_expr(
                        node.predicate, combined, predicate=True
                    ),
                    "join predicate",
                )
            return combined
        if node.how == "left":
            if not left_keys:
                raise self._refuse(
                    "D102",
                    "left outer join requires at least one equality "
                    f"conjunct; got predicate {node.predicate!r}",
                )
            return combined
        # semi / anti share the predicate requirement.
        if not left_keys:
            if node.predicate is None:
                raise self._refuse(
                    "D102", f"{node.how} join requires a predicate"
                )
            self._resolved(
                lambda: compile_expr(node.predicate, combined, predicate=True),
                "join predicate",
            )
        return left


def predict_plan_lowerability(
    root: PlanNode, subject: str = "<plan>", optimize: bool = True
) -> LoweringPrediction:
    """Predict whether *root* delta-lowers, without building operators.

    With ``optimize=True`` (the default) the plan is first rewritten
    with the same pass sequence :class:`~repro.relalg.delta.DeltaPlan`
    applies, so the verdict matches what the backend actually lowers —
    e.g. Listing 1's key-less ``LEFT JOIN ... IS NULL`` only lowers
    *because* the outer-join reduction rewrote it to an anti join.
    """
    mirror = _Mirror(subject)
    try:
        if optimize:
            from repro.relalg.optimizer import optimize_plan
            from repro.relalg.plan import reduce_outer_joins

            root = mirror._resolved(
                lambda: reduce_outer_joins(optimize_plan(root)),
                "plan optimization",
            )
        mirror.lower(root)
    except _Refusal as refusal:
        return LoweringPrediction(False, refusal.diagnostic)
    return LoweringPrediction(True)


def _dummy_tables() -> tuple[Table, Table]:
    return (
        Table("requests", list(REQUEST_COLUMNS)),
        Table("history", list(REQUEST_COLUMNS)),
    )


def predict_delta_lowerability(spec: ProtocolSpec) -> LoweringPrediction:
    """Static :meth:`CompiledDeltaBackend.supports` for one spec.

    Builds the spec's plan (relalg builder preferred, SQL text planned
    otherwise — the same dialect choice ``_spec_builder`` makes) against
    empty Table-2 stores, then runs the mirror walk.  A spec with
    neither dialect is trivially not lowerable.
    """
    if spec.relalg is None and spec.sql is None:
        return LoweringPrediction(
            False,
            Diagnostic(
                "D106",
                spec.name,
                "spec carries neither a relalg nor a sql dialect",
            ),
        )
    dialect = "relalg" if spec.relalg is not None else "sql"
    subject = f"{spec.name}/{dialect}"
    requests, history = _dummy_tables()
    try:
        if spec.relalg is not None:
            root = spec.relalg(requests, history)
            if hasattr(root, "plan"):  # a Query wrapper
                root = root.plan
        else:
            from repro.relalg.sql import SqlPlanner

            planner = SqlPlanner({"requests": requests, "history": history})
            root = planner.plan(spec.sql, defer_ctes=True)
    except Exception as error:
        return LoweringPrediction(
            False,
            Diagnostic(
                "D106",
                subject,
                f"building the {dialect} plan failed: "
                f"{type(error).__name__}: {error}",
            ),
        )
    return predict_plan_lowerability(root, subject=subject)


def predicted_backend_matrix() -> dict[str, dict[str, bool]]:
    """spec name -> backend name -> statically predicted support.

    The baseline prediction is the declared contract — the backend's
    ``consumes`` dialects intersect the spec's — and ``compiled-delta``
    additionally requires :func:`predict_delta_lowerability`.  The
    matrix test asserts this dict equals what the live backends'
    ``supports()`` answers, cell for cell.
    """
    # Imported lazily: backends import this package for refusal
    # enrichment, so the analysis layer must not import them at the top.
    from repro.backends.base import BACKEND_REGISTRY

    matrix: dict[str, dict[str, bool]] = {}
    for spec_name in sorted(SPEC_REGISTRY):
        spec = SPEC_REGISTRY[spec_name]
        row: dict[str, bool] = {}
        for backend_name in sorted(BACKEND_REGISTRY):
            backend = BACKEND_REGISTRY[backend_name]()
            predicted = bool(set(backend.consumes) & spec.dialects())
            if predicted and backend_name == "compiled-delta":
                predicted = predict_delta_lowerability(spec).lowerable
            row[backend_name] = predicted
        matrix[spec_name] = row
    return matrix


def explain_refusal(spec: ProtocolSpec) -> str:
    """One-line operator-path diagnosis of a compiled-delta refusal.

    Empty string when the spec is predicted lowerable (the refusal must
    then come from the dialect contract, which the caller reports).
    """
    prediction = predict_delta_lowerability(spec)
    if prediction.lowerable or prediction.refusal is None:
        return ""
    refusal = prediction.refusal
    where = f" [at {refusal.location}]" if refusal.location else ""
    return f"{refusal.subject}: {refusal.message}{where} ({refusal.rule})"
