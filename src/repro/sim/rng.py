"""Deterministic named random streams.

Each subsystem (workload object choice, think times, deadlock victim
selection, ...) draws from its own stream, so changing one subsystem's
consumption pattern does not perturb the others — a standard
variance-reduction discipline in simulation studies.
"""

from __future__ import annotations

import random
from typing import Dict


class RandomStreams:
    """A family of independent :class:`random.Random` streams derived
    from a single master seed."""

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called *name*."""
        if name not in self._streams:
            # Derive a child seed deterministically from master seed + name.
            child_seed = hash((self._master_seed, name)) & 0x7FFFFFFFFFFFFFFF
            self._streams[name] = random.Random(child_seed)
        return self._streams[name]

    def reset(self) -> None:
        """Forget all streams; they re-derive identically on next use."""
        self._streams.clear()
