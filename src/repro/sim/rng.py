"""Deterministic named random streams.

Each subsystem (workload object choice, think times, deadlock victim
selection, ...) draws from its own stream, so changing one subsystem's
consumption pattern does not perturb the others — a standard
variance-reduction discipline in simulation studies.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a child seed from ``(master_seed, name)``.

    Uses a cryptographic digest rather than ``hash()`` because string
    hashing is salted per process (PYTHONHASHSEED): replayable fault
    plans and the CI determinism smoke compare runs across *separate*
    interpreter invocations, so the derivation must be process-stable.
    """
    digest = hashlib.sha256(f"{master_seed}\x00{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


class RandomStreams:
    """A family of independent :class:`random.Random` streams derived
    from a single master seed."""

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called *name*."""
        if name not in self._streams:
            self._streams[name] = random.Random(
                derive_seed(self._master_seed, name)
            )
        return self._streams[name]

    def reset(self) -> None:
        """Forget all streams; they re-derive identically on next use."""
        self._streams.clear()
