"""The event-driven simulator loop."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue


class Process:
    """Handle for a logical simulated actor (a client, the server CPU).

    Processes are lightweight labels used for tracing; behaviour lives in
    the callbacks they schedule.
    """

    __slots__ = ("name", "simulator")

    def __init__(self, name: str, simulator: "Simulator") -> None:
        self.name = name
        self.simulator = simulator

    def schedule(self, delay: float, action: Callable[[], Any], label: str = "") -> Event:
        return self.simulator.schedule(delay, action, label=label or self.name)

    def __repr__(self) -> str:
        return f"Process({self.name!r})"


class Simulator:
    """Minimal deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.0, lambda: print(sim.now))
        sim.run_until(10.0)
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = VirtualClock(start_time)
        self.queue = EventQueue()
        self._running = False
        self._event_count = 0

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def events_processed(self) -> int:
        return self._event_count

    def process(self, name: str) -> Process:
        return Process(name, self)

    def schedule(self, delay: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule *action* to run *delay* virtual seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.queue.push(self.now + delay, action, label=label)

    def schedule_at(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule *action* at absolute virtual time *time* (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self.queue.push(time, action, label=label)

    def cancel(self, event: Event) -> None:
        self.queue.cancel(event)

    def jump(self, delta: float) -> float:
        """Jump the clock forward by *delta* virtual seconds (a fault-
        injection primitive: an NTP step, a VM pause, a GC stall).

        Events scheduled inside the skipped window are not lost; they
        fire at the landing time, in their original relative order —
        exactly what a wall-clock jump does to timers that were already
        armed.  Returns the new clock value."""
        if delta < 0:
            raise ValueError(f"cannot jump backwards: {delta}")
        target = self.now + delta
        self.queue.retime_before(target)
        self.clock.advance_to(target)
        return target

    def step(self) -> bool:
        """Process one event.  Returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        self._event_count += 1
        event.action()
        return True

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> float:
        """Run events with time <= *end_time*; the clock then lands on
        the horizon *end_time* itself.  Returns the final clock value."""
        processed = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > end_time:
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        if self.now < end_time:
            self.clock.advance_to(end_time)
        return self.now

    def run_to_completion(self, max_events: int = 50_000_000) -> float:
        """Drain the queue completely (bounded by *max_events*)."""
        processed = 0
        while self.step():
            processed += 1
            if processed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; "
                    "likely a runaway event loop"
                )
        return self.now
