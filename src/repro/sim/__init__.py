"""Discrete-event simulation kernel.

The paper's experiments ran against a commercial DBMS on a 2.8 GHz
single-core machine for wall-clock 240 s windows.  We reproduce the
*timing structure* of those experiments on a virtual clock: the simulated
server in :mod:`repro.server` schedules CPU bursts, lock waits and context
switches as events on this kernel, so experiments are deterministic,
fast, and independent of the host machine.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.clock import VirtualClock
from repro.sim.simulator import Process, Simulator
from repro.sim.rng import RandomStreams

__all__ = [
    "Event",
    "EventQueue",
    "VirtualClock",
    "Process",
    "Simulator",
    "RandomStreams",
]
