"""Virtual clock.

Kept separate from the simulator so components (metrics, stores, trigger
policies) can depend on "a thing that tells the time" without knowing
whether they run under simulation or wall-clock time.
"""

from __future__ import annotations

import time as _time


class VirtualClock:
    """A monotonically advancing virtual clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        if t < self._now:
            raise ValueError(f"clock cannot move backwards: {t} < {self._now}")
        self._now = t

    def advance_by(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"negative time step: {dt}")
        self._now += dt

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"


class WallClock:
    """Adapter with the same interface backed by the host's monotonic
    clock — used when measuring *real* query-evaluation times (the
    declarative-overhead experiment measures actual Python query cost)."""

    @property
    def now(self) -> float:
        return _time.perf_counter()
