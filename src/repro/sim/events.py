"""Event and event-queue primitives for the virtual-time kernel."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback at a point in virtual time.

    Ordering is (time, sequence): ties in time resolve in scheduling
    order, which keeps simulations deterministic.
    """

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; the queue skips cancelled events."""
        self.cancelled = True


class EventQueue:
    """A stable min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._live = 0

    def push(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        if time < 0:
            raise ValueError(f"cannot schedule at negative time {time}")
        event = Event(time=time, seq=next(self._seq), action=action, label=label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def cancel(self, event: Event) -> None:
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def retime_before(self, target: float) -> int:
        """Move every live event scheduled before *target* to fire at
        *target* instead (clock-jump support).  Event identity is
        preserved — handles stay cancellable — and ties at *target*
        resolve by the original scheduling sequence, so the relative
        order of the moved events is unchanged.  Returns the number of
        events moved."""
        moved = 0
        for event in self._heap:
            if not event.cancelled and event.time < target:
                event.time = target
                moved += 1
        if moved:
            heapq.heapify(self._heap)
        return moved

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
