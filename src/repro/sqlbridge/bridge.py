"""In-memory sqlite3 execution of the scheduling query."""

from __future__ import annotations

import sqlite3
from typing import Iterable, Sequence

from repro.model.request import Request

#: Listing 1 with sqlite-compatible quoting.  sqlite accepts the paper's
#: SQL as-is except that ``object`` is not reserved and needs no change;
#: the only edit is stylistic normalization of the trailing SELECT.
_LISTING1_SQLITE = """\
WITH RLockedObjects AS
 (SELECT a.object AS object, a.ta AS ta, a.operation AS operation
  FROM history a
  WHERE NOT EXISTS
   (SELECT * FROM history b
    WHERE (a.ta=b.ta AND a.object=b.object AND b.operation='w')
       OR (a.ta=b.ta AND (b.operation='a' OR b.operation='c')))),
WLockedObjects AS
 (SELECT DISTINCT a.object AS object, a.ta AS ta, a.operation AS operation
  FROM history a LEFT JOIN
   (SELECT ta FROM history
    WHERE operation='a' OR operation='c') AS finishedTAs
   ON a.ta = finishedTAs.ta
  WHERE a.operation='w' AND finishedTAs.ta IS NULL),
OperationsOnWLockedObjects AS
 (SELECT r.ta AS ta, r.intrata AS intrata
  FROM requests r, WLockedObjects wlo
  WHERE r.object=wlo.object AND r.ta<>wlo.ta),
OperationsOnRLockedObjects AS
 (SELECT wOpsOnRLObj.ta AS ta, wOpsOnRLObj.intrata AS intrata
  FROM requests wOpsOnRLObj, RLockedObjects rl
  WHERE wOpsOnRLObj.object=rl.object
    AND wOpsOnRLObj.operation='w'
    AND wOpsOnRLObj.ta<>rl.ta),
OpsOnSameObjAsPriorSelectOps AS
 (SELECT r2.ta AS ta, r2.intrata AS intrata
  FROM requests r2, requests r1
  WHERE r2.object=r1.object AND r2.ta>r1.ta
    AND ((r1.operation='w') OR (r2.operation='w'))),
QualifiedSS2PLOps AS
 (SELECT ta, intrata FROM requests
  EXCEPT
  SELECT ta, intrata FROM
   (SELECT * FROM OperationsOnWLockedObjects
    UNION ALL
    SELECT * FROM OpsOnSameObjAsPriorSelectOps
    UNION ALL
    SELECT * FROM OperationsOnRLockedObjects))
SELECT r2.id, r2.ta, r2.intrata, r2.operation, r2.object
FROM requests r2, QualifiedSS2PLOps ss2PL
WHERE r2.ta=ss2PL.ta AND r2.intrata=ss2PL.intrata
ORDER BY r2.id
"""

#: Public name for the sqlite rendition of Listing 1 (the protocol spec
#: layer feeds it to the sqlite backend as the ``sqlite_sql`` dialect).
LISTING1_SQLITE = _LISTING1_SQLITE

_SCHEMA = """\
CREATE TABLE requests (
    id       INTEGER PRIMARY KEY,
    ta       INTEGER NOT NULL,
    intrata  INTEGER NOT NULL,
    operation TEXT NOT NULL,
    object   INTEGER NOT NULL
);
CREATE TABLE history (
    id       INTEGER PRIMARY KEY,
    ta       INTEGER NOT NULL,
    intrata  INTEGER NOT NULL,
    operation TEXT NOT NULL,
    object   INTEGER NOT NULL
);
CREATE INDEX history_obj ON history(object);
CREATE INDEX history_ta ON history(ta);
CREATE INDEX requests_obj ON requests(object);
"""


class SqliteScheduler:
    """Pending/history tables in an in-memory sqlite database, with the
    paper's scheduling query and batch maintenance operations.

    Mirrors the paper's measured loop (Section 4.3.1): insert the
    incoming batch into ``requests``, run the SS2PL query, delete the
    qualified rows from ``requests`` and insert them into ``history``.
    """

    def __init__(self) -> None:
        self._conn = sqlite3.connect(":memory:")
        self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SqliteScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- loading ---------------------------------------------------------------

    def insert_pending(self, requests: Iterable[Request]) -> None:
        self._conn.executemany(
            "INSERT INTO requests VALUES (?, ?, ?, ?, ?)",
            [r.as_row() for r in requests],
        )

    def insert_history(self, requests: Iterable[Request]) -> None:
        self._conn.executemany(
            "INSERT INTO history VALUES (?, ?, ?, ?, ?)",
            [r.as_row() for r in requests],
        )

    def load_rows(self, table: str, rows: Iterable[Sequence]) -> None:
        if table not in ("requests", "history"):
            raise ValueError(f"unknown table {table!r}")
        self._conn.executemany(
            f"INSERT INTO {table} VALUES (?, ?, ?, ?, ?)", [tuple(r) for r in rows]
        )

    def clear(self) -> None:
        self._conn.execute("DELETE FROM requests")
        self._conn.execute("DELETE FROM history")

    # -- the paper's scheduler step ---------------------------------------------

    def execute(self, sql: str) -> list[tuple]:
        """Run an arbitrary scheduling query over the loaded tables."""
        return [tuple(row) for row in self._conn.execute(sql).fetchall()]

    def qualified_requests(self) -> list[Request]:
        """Run Listing 1; returns qualified requests in id order."""
        rows = self._conn.execute(_LISTING1_SQLITE).fetchall()
        return [Request.from_row(row) for row in rows]

    def scheduler_step(self, incoming: Sequence[Request]) -> list[Request]:
        """One full scheduler run as the paper times it: enqueue the
        incoming batch, query, move qualified rows requests→history."""
        self.insert_pending(incoming)
        qualified = self.qualified_requests()
        self._conn.executemany(
            "DELETE FROM requests WHERE id = ?", [(r.id,) for r in qualified]
        )
        self._conn.executemany(
            "INSERT INTO history VALUES (?, ?, ?, ?, ?)",
            [r.as_row() for r in qualified],
        )
        return qualified

    def prune_finished_history(self) -> int:
        """Remove history of committed/aborted transactions (the paper
        stores only "relevant prior executed requests")."""
        cursor = self._conn.execute(
            "DELETE FROM history WHERE ta IN "
            "(SELECT ta FROM history WHERE operation IN ('a','c'))"
        )
        return cursor.rowcount

    def counts(self) -> tuple[int, int]:
        pending = self._conn.execute("SELECT COUNT(*) FROM requests").fetchone()[0]
        history = self._conn.execute("SELECT COUNT(*) FROM history").fetchone()[0]
        return pending, history
