"""sqlite3 backend: executes the paper's literal Listing 1 SQL.

The paper ran its SS2PL query on a commercial DBMS.  Python's bundled
sqlite3 is our stand-in real SQL engine: it executes the Listing 1 text
verbatim (modulo one keyword-quoting tweak), which gives us

* a cross-check that the relalg and Datalog formulations compute the
  same qualified sets as a production SQL engine, and
* an independent backend for the language-ablation bench (E8).
"""

from repro.sqlbridge.bridge import SqliteScheduler

__all__ = ["SqliteScheduler"]
