"""repro — Declarative Scheduling in Highly Scalable Systems.

A complete reproduction of Tilgner's EDBT 2010 workshop paper: a
middleware scheduler programmed with declarative rules, where pending
and historical requests are data and scheduling protocols are queries.

Quickstart
----------
>>> import repro.api as api
>>> from repro import make_transaction
>>> scheduler = api.make_scheduler("ss2pl")
>>> for request in make_transaction(1, [("r", 10), ("w", 10)], start_id=1):
...     scheduler.submit(request)
>>> batch = scheduler.step().qualified
>>> [str(r) for r in batch]
['r1[10]', 'w1[10]', 'c1']

:mod:`repro.api` is the documented construction surface — protocols,
triggers, schedulers, and the asyncio serving layer all build through
it (``api.open_service("ss2pl", "compiled-delta")``).  The class
re-exports below remain for compatibility.

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.api` — the public construction surface
- :mod:`repro.core` — the middleware scheduler (Figure 1)
- :mod:`repro.protocols` — declarative protocols (SS2PL/Listing 1, 2PL
  variants, SLA, relaxed, application-specific, adaptive)
- :mod:`repro.relalg` / :mod:`repro.datalog` / :mod:`repro.lang` /
  :mod:`repro.sqlbridge` — the four declarative backends
- :mod:`repro.serve` — the asyncio serving layer (pooled sessions)
- :mod:`repro.shard` — sharded multi-scheduler scale-out
- :mod:`repro.server` — the simulated DBMS with its native scheduler
- :mod:`repro.workload`, :mod:`repro.sim`, :mod:`repro.metrics` —
  workloads, virtual time, measurement
- :mod:`repro.bench` — one experiment module per paper table/figure
"""

from repro.model import (
    Operation,
    Request,
    RequestAttributes,
    Schedule,
    Transaction,
    is_conflict_serializable,
    is_strict,
    make_transaction,
)
from repro.core import (
    DeclarativeScheduler,
    FillLevelTrigger,
    HybridTrigger,
    MiddlewareSimulation,
    PassthroughScheduler,
    SchedulerConfig,
    TimeLapseTrigger,
)
from repro.protocols import (
    AdaptiveConsistencyProtocol,
    BoundedOversellProtocol,
    ConservativeTwoPLProtocol,
    EarliestDeadlineFirstProtocol,
    FCFSProtocol,
    PaperListing1Protocol,
    Protocol,
    ReadCommittedProtocol,
    SLAOrderingProtocol,
    SS2PLDatalogProtocol,
    SS2PLRelalgProtocol,
    SS2PLSqlProtocol,
)
from repro.lang import SDLProtocol, SDL_SS2PL, SDL_READ_COMMITTED
from repro.server import BatchServer, CostModel, SimulatedDBMS
from repro.workload import PAPER_WORKLOAD, WorkloadSpec
from repro import api

__version__ = "1.0.0"

__all__ = [
    "api",
    "Operation",
    "Request",
    "RequestAttributes",
    "Schedule",
    "Transaction",
    "is_conflict_serializable",
    "is_strict",
    "make_transaction",
    "DeclarativeScheduler",
    "PassthroughScheduler",
    "SchedulerConfig",
    "TimeLapseTrigger",
    "FillLevelTrigger",
    "HybridTrigger",
    "MiddlewareSimulation",
    "Protocol",
    "PaperListing1Protocol",
    "SS2PLRelalgProtocol",
    "SS2PLDatalogProtocol",
    "SS2PLSqlProtocol",
    "ConservativeTwoPLProtocol",
    "FCFSProtocol",
    "SLAOrderingProtocol",
    "EarliestDeadlineFirstProtocol",
    "ReadCommittedProtocol",
    "BoundedOversellProtocol",
    "AdaptiveConsistencyProtocol",
    "SDLProtocol",
    "SDL_SS2PL",
    "SDL_READ_COMMITTED",
    "SimulatedDBMS",
    "BatchServer",
    "CostModel",
    "WorkloadSpec",
    "PAPER_WORKLOAD",
    "__version__",
]
