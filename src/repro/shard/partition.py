"""Object-id hash partitioning for the sharded scheduler.

Every data object is owned by exactly one shard, chosen by a
deterministic multiplicative hash of the object number.  Determinism
matters twice over: scenario runs must replay byte-identically across
processes and Python versions (so ``hash()`` with its per-process
randomization is out), and the ownership map is what makes per-shard
protocol evaluation sound — all requests touching one object meet in
one shard's pending/history tables, where the ordinary declarative
protocol serializes them.

Termination requests (``c``/``a``) touch no object; transactions that
consist only of a termination are routed by hashing the transaction
number instead (:meth:`HashPartitioner.fallback_for`).
"""

from __future__ import annotations

__all__ = ["HashPartitioner", "shard_of_object"]

#: splitmix32 finalizer constants.  Fixed here forever: changing them
#: silently re-partitions recorded runs.
_SALT = 0x9E3779B9
_MIX1 = 0x85EBCA6B
_MIX2 = 0xC2B2AE35
_MASK = 0xFFFFFFFF


def shard_of_object(obj: int, shards: int) -> int:
    """Owning shard of *obj* among ``shards`` schedulers (stable).

    A full avalanche mix (splitmix32 finalizer) scatters the small
    sequential object ids real workloads use.  This matters more than
    it sounds: scheduling cost is superlinear in the per-object
    conflict-bucket size, so a Zipf workload's makespan is set by the
    single worst shard, and a weak mix (e.g. one multiplicative round)
    measurably co-locates several of the hottest ids on one shard.
    """
    if shards <= 1:
        return 0
    z = (obj + _SALT) & _MASK
    z = ((z ^ (z >> 16)) * _MIX1) & _MASK
    z = ((z ^ (z >> 13)) * _MIX2) & _MASK
    return (z ^ (z >> 16)) % shards


class HashPartitioner:
    """The ownership map: object number -> shard index."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards = shards

    def shard_of(self, obj: int) -> int:
        return shard_of_object(obj, self.shards)

    def fallback_for(self, ta: int) -> int:
        """Shard for a transaction with no data objects to hash."""
        return shard_of_object(ta & _MASK, self.shards)
