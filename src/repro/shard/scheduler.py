"""``ShardedScheduler``: N independent declarative schedulers behind
the one-scheduler interface.

One pending table cannot hold millions of users (ROADMAP item 2).  The
PR 2 spec/backend split makes scale-out a pure orchestration problem:
each shard is an ordinary :class:`~repro.core.scheduler.DeclarativeScheduler`
with its own compiled plans, trigger, recovery, and admission policy,
and this facade owns only the routing.  Requests are partitioned by
object-id hash (:mod:`repro.shard.partition`), so every conflict on an
object is still decided by exactly one shard's declarative protocol.

Transactions that touch objects owned by several shards need a
cross-shard path.  Two routing modes are provided:

``two-phase`` (default)
    Reserve-then-commit.  Submitted statements queue in a global FIFO
    and are routed at the start of the next step, so a burst-submitted
    transaction is classified knowing its full shard span before the
    first statement is forwarded.  Each data statement is then
    forwarded to its owning shard (the *reserve*: the shard's protocol
    grants it a lock under its ordinary rules, with the statement
    renumbered to a dense per-shard ``intrata`` so program-order gates
    keep working).  How a coordinated transaction acquires its
    reserves is set by ``CrossShardPolicy.reserve_mode``: ``parallel``
    forwards everything at once (fastest, can deadlock cross-shard),
    ``ordered`` acquires one statement at a time in global object
    order (deadlock-free among ordered acquirers, ~2x the latency),
    and ``escalate`` (default) tries parallel first and
    switches the transaction to ordered after its first abort.  Grants
    are held by the facade and released to the caller strictly in
    original program order; the termination request is broadcast to
    every owning shard only once *all* data statements are granted —
    the *commit* — so no shard releases the transaction's locks while
    another shard is still reserving.  When a reserve makes no
    progress past ``reserve_timeout`` (scaled by ``ordered_patience``
    for ordered acquirers, which cannot be deadlocked among
    themselves), the stall is treated as a cross-shard lock cycle —
    which no single shard can see: the whole reservation is aborted on
    every owning shard, parked under exponential backoff, and
    resubmitted as a fresh *incarnation* (new transaction number, new
    request ids — shard monitors see a well-formed new transaction,
    the caller's original ids never reach a terminal state twice).
    Transactions holding no granted reserve are exempt from the sweep
    (they block nobody, so they cannot be part of a deadlock cycle —
    aborting them would only thrash hot-lock convoys).
    Already-reported grants are not re-reported on re-grant.

``home``
    Route every statement of a multi-object transaction to the shard
    owning its *first* object.  No coordination, no retries — and
    deliberately unsound for cross-object conflicts, because two
    transactions with different home shards can both be granted writes
    on the same object.  It exists as the comparison baseline the
    cross-shard grant-union invariant check is designed to catch (see
    :class:`_UnionHistory` and DESIGN.md §7).

Invariant checking stays global: assigning ``monitor`` installs a
per-shard :class:`~repro.faults.invariants.InvariantMonitor` on every
shard (shard-local conflicting-grants / lifecycle checks over the
renumbered requests) while the facade-level monitor checks the
*original* request stream plus the cross-shard grant-union — the
no-conflicting-grants sweep evaluated over the union of all shard
histories, which is exactly the check that distinguishes a sound
two-phase run from a home-routed one.

The facade implements the scheduler surface
:class:`~repro.serve.service.SchedulerService` drives (``submit`` /
``should_run`` / ``step`` / ``clock`` / ``step_hooks`` / ``monitor`` /
``incoming`` / ``pending`` / ``trigger`` / ``next_recovery_due`` /
``note_client_crashed`` / ...), so pooled sessions route transparently
through ``repro.api.open_service(..., shards=N)``.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Optional, Sequence

from repro.core.scheduler import (
    DeclarativeScheduler,
    RecoveryActions,
    SchedulerStalledError,
    SchedulerStepResult,
)
from repro.faults.invariants import InvariantMonitor
from repro.model.request import NO_OBJECT, Operation, Request
from repro.shard.partition import HashPartitioner

__all__ = ["CrossShardPolicy", "ShardedScheduler", "ROUTES"]

#: Valid ``route=`` spellings.
ROUTES = ("two-phase", "home")

#: Sentinel statement index marking a forwarded termination request.
_TERM = -1


def _zero_clock() -> float:
    return 0.0


@dataclass(frozen=True)
class CrossShardPolicy:
    """Knobs of the two-phase reserve/commit path."""

    #: Seconds a coordinated transaction may sit with ungranted
    #: reserves before the facade aborts and retries it (the
    #: cross-shard deadlock timeout).
    reserve_timeout: float = 0.05
    #: Base park delay before resubmitting a timed-out reservation.
    retry_backoff: float = 0.01
    #: Multiplier applied to the park delay per prior retry.
    backoff_factor: float = 2.0
    #: Cap on the backoff exponent.
    max_backoff_exponent: int = 6
    #: Retries before the facade gives up and aborts the transaction
    #: for good (surfaced as a recovery ``timeout`` action).
    max_retries: int = 10
    #: How a coordinated transaction acquires its cross-shard reserves:
    #:
    #: ``"parallel"``
    #:     Forward every statement immediately.  Lowest latency — a
    #:     transaction spread over N shards can be granted up to N
    #:     statements per step, one through each shard's program-order
    #:     gate — but acquisition order is unconstrained, so hot
    #:     workloads burn abort-and-retry cycles resolving cross-shard
    #:     deadlocks.
    #: ``"ordered"``
    #:     Acquire reserves strictly one at a time in global object
    #:     order (classical deadlock avoidance: transactions that lock
    #:     in one total order cannot form a wait cycle among
    #:     themselves).  Deadlock-free but serial: latency grows with
    #:     statement count and the per-step parallelism is lost.
    #: ``"escalate"`` (default)
    #:     Optimistic-then-conservative: the first incarnation reserves
    #:     in parallel; a transaction that trips the reserve timeout
    #:     retries under ordered acquisition.  Bounds deadlock churn to
    #:     about one abort per unlucky transaction while the common
    #:     case keeps the parallel fast path.
    reserve_mode: str = "escalate"
    #: Multiplier on ``reserve_timeout`` for transactions acquiring in
    #: ordered mode.  Ordered acquirers cannot deadlock among
    #: themselves (only against program-order single-shard
    #: transactions, which is rare), so a stall almost always means a
    #: busy lock queue, not a cycle — sweeping them at the optimistic
    #: timeout would abort healthy convoy members over and over.
    ordered_patience: float = 10.0

    def __post_init__(self) -> None:
        if self.reserve_timeout <= 0:
            raise ValueError("reserve_timeout must be positive")
        if self.retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.reserve_mode not in ("parallel", "ordered", "escalate"):
            raise ValueError(
                f"unknown reserve_mode {self.reserve_mode!r}; choose "
                "'parallel', 'ordered' or 'escalate'"
            )
        if self.ordered_patience < 1.0:
            raise ValueError("ordered_patience must be >= 1")

    def park_delay_for(self, retries: int) -> float:
        exponent = min(max(retries - 1, 0), self.max_backoff_exponent)
        return self.retry_backoff * self.backoff_factor**exponent


@dataclass
class _TaState:
    """Facade-side bookkeeping for one client transaction."""

    ta: int
    #: Transaction number the shards currently see (== ``ta`` for the
    #: first attempt; a fresh negative number per retry).
    incarnation: int
    statements: list[Request] = field(default_factory=list)
    termination: Optional[Request] = None
    #: True once the transaction spans more than one shard (two-phase
    #: coordination engaged; sticky across retries).
    coordinated: bool = False
    #: Home shard (``route="home"`` only).
    home: Optional[int] = None
    owners: set[int] = field(default_factory=set)
    #: Per-shard count of forwarded requests == next dense intrata.
    shard_counts: dict[int, int] = field(default_factory=dict)
    #: Statements forwarded in the current incarnation.
    forwarded: int = 0
    #: Statement indices granted in the current incarnation.
    granted: set[int] = field(default_factory=set)
    #: Statement indices already reported to the caller (survives
    #: retries: a re-granted reserve is never re-reported).
    reported: set[int] = field(default_factory=set)
    #: Statement indices awaiting their turn under ordered reserves.
    queued: list[int] = field(default_factory=list)
    #: Statement indices already handed to the routing machinery (the
    #: step-time route drain and a parked resubmit would otherwise both
    #: route the same statement).
    routed: set[int] = field(default_factory=set)
    #: Forwarded request id -> statement index, current incarnation.
    alias_ids: dict[int, int] = field(default_factory=dict)
    term_forwarded: bool = False
    term_id: Optional[int] = None
    term_owners: set[int] = field(default_factory=set)
    term_granted: set[int] = field(default_factory=set)
    reserve_since: Optional[float] = None
    retries: int = 0
    parked_until: Optional[float] = None
    orphaned: bool = False


class _UnionTable:
    """Read-only union of the shards' history tables (monitor shape)."""

    def __init__(self, shards: Sequence[DeclarativeScheduler]) -> None:
        self._shards = shards
        self.schema = shards[0].history.table.schema

    @property
    def rows(self) -> Iterator[tuple]:
        return itertools.chain.from_iterable(
            shard.history.table.rows for shard in self._shards
        )


class _UnionHistory:
    """Union view of all shard histories, duck-typed like
    :class:`~repro.core.stores.HistoryStore` as far as
    :meth:`InvariantMonitor._check_conflicting_grants` reads it.  An
    object's rows all live in one shard, so a conflict in this union
    can only come from the routing layer itself — this is the
    cross-shard grant-union check."""

    def __init__(self, shards: Sequence[DeclarativeScheduler]) -> None:
        self._shards = shards

    @property
    def active_transactions(self) -> set[int]:
        active: set[int] = set()
        for shard in self._shards:
            active |= shard.history.active_transactions
        return active

    @property
    def table(self) -> _UnionTable:
        return _UnionTable(self._shards)

    def __len__(self) -> int:
        return sum(len(shard.history) for shard in self._shards)


class _UnionTrigger:
    """Earliest next-check deadline across the shards' triggers."""

    def __init__(self, shards: Sequence[DeclarativeScheduler]) -> None:
        self._shards = shards

    def next_check(self, now: float) -> Optional[float]:
        deadlines = [
            deadline
            for shard in self._shards
            if (deadline := shard.trigger.next_check(now)) is not None
        ]
        return min(deadlines) if deadlines else None

    def notify_fired(self, now: float) -> None:  # pragma: no cover - shape
        pass


class _IncomingView:
    """Facade ``incoming``: shard queues plus requests the facade is
    holding itself (parked retries, not-yet-broadcast terminations)."""

    def __init__(self, owner: "ShardedScheduler") -> None:
        self._owner = owner

    def _held(self) -> Iterator[Request]:
        for state in self._owner._states.values():
            if state.parked_until is not None:
                yield from state.statements
                if state.termination is not None:
                    yield state.termination
            else:
                for idx in state.queued:
                    yield state.statements[idx]
                if state.termination is not None and not state.term_forwarded:
                    yield state.termination
        for state, idx, __ in self._owner._route_queue:
            if (
                self._owner._states.get(state.ta) is not state
                or state.parked_until is not None
                or idx == _TERM
                or idx in state.routed
                or idx in state.queued
            ):
                continue  # already yielded (or moot) above
            yield state.statements[idx]

    def __len__(self) -> int:
        return sum(len(shard.incoming) for shard in self._owner.shards) + sum(
            1 for __ in self._held()
        )

    def __iter__(self) -> Iterator[Request]:
        for shard in self._owner.shards:
            yield from shard.incoming
        yield from self._held()


class _PendingView:
    def __init__(self, owner: "ShardedScheduler") -> None:
        self._owner = owner

    def __len__(self) -> int:
        return sum(len(shard.pending) for shard in self._owner.shards)


class ShardedScheduler:
    """N declarative schedulers behind the one-scheduler surface.

    Build through :func:`repro.api.make_scheduler` (``shards=N``) or
    directly from a list of :class:`DeclarativeScheduler` instances.
    All shards should run the same protocol; the facade never evaluates
    scheduling rules itself.
    """

    def __init__(
        self,
        shards: Sequence[DeclarativeScheduler],
        *,
        route: str = "two-phase",
        cross_shard: Optional[CrossShardPolicy] = None,
        metrics=None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        if route not in ROUTES:
            raise ValueError(f"unknown route {route!r}; choose from {ROUTES}")
        self.shards = list(shards)
        self.route = route
        self.cross_shard = cross_shard if cross_shard is not None else CrossShardPolicy()
        self.partitioner = HashPartitioner(len(self.shards))
        self.metrics = metrics
        self.steps_run = 0
        self.step_hooks: list[Callable[[SchedulerStepResult], None]] = []
        self._monitor: Optional[InvariantMonitor] = None
        self._states: dict[int, _TaState] = {}
        self._by_incarnation: dict[int, _TaState] = {}
        #: Forwarded request id -> (state, statement index | _TERM).
        self._requests: dict[int, tuple[_TaState, int]] = {}
        #: Submitted-but-unrouted requests, global FIFO: routing is
        #: deferred to the next step so a burst-submitted transaction
        #: is routed knowing its full shard span (coordination — and
        #: the ordered lock-acquisition order — is decided before the
        #: first statement is forwarded, not discovered midway).
        self._route_queue: list[tuple[_TaState, int, float]] = []
        #: Transaction numbers for retry incarnations: negative and far
        #: below the shards' own synthesized-abort ids.
        self._incarnation_ids = itertools.count(-1_000_000, -1)
        #: Request ids for retried statements: a disjoint negative range
        #: so they collide with neither client ids nor shard abort ids.
        self._retry_request_ids = itertools.count(-1_000_000_000, -1)
        #: Ids of facade-synthesized abort requests (never submitted to
        #: a shard; only surfaced through recovery actions).
        self._facade_abort_ids = itertools.count(-2_000_000_000, -1)
        self.incoming = _IncomingView(self)
        self.pending = _PendingView(self)
        self.trigger = _UnionTrigger(self.shards)
        #: Per-shard protocol-query seconds of the most recent step
        #: (index == shard index).  A deployment runs shards on
        #: separate workers, so the step's critical path is the *max*
        #: of these while the facade necessarily pays the *sum*;
        #: benchmarks use the breakdown to model concurrent shards.
        self.shard_query_seconds: list[float] = [0.0] * len(self.shards)
        #: Per-shard wall seconds of the most recent ``shard.step()``
        #: call — the query time above plus the shard's own batch
        #: assembly, trigger, and recovery scans, i.e. everything that
        #: runs on that shard's worker in a deployment.
        self.shard_step_seconds: list[float] = [0.0] * len(self.shards)
        self.clock = clock if clock is not None else _zero_clock

    # -- pass-through configuration surface ---------------------------------

    @property
    def clock(self) -> Callable[[], float]:
        return self._clock

    @clock.setter
    def clock(self, fn: Callable[[], float]) -> None:
        self._clock = fn
        for shard in self.shards:
            shard.clock = fn

    @property
    def monitor(self) -> Optional[InvariantMonitor]:
        return self._monitor

    @monitor.setter
    def monitor(self, value: Optional[InvariantMonitor]) -> None:
        self._monitor = value
        if value is not None:
            for shard in self.shards:
                if shard.monitor is None:
                    shard.monitor = InvariantMonitor(
                        value.lock_model,
                        conflict_interval=value.conflict_interval,
                    )

    @property
    def protocol(self):
        return self.shards[0].protocol

    @property
    def config(self):
        return self.shards[0].config

    @property
    def recovery(self):
        return self.shards[0].recovery

    @property
    def admission(self):
        return self.shards[0].admission

    @property
    def history(self) -> _UnionHistory:
        return _UnionHistory(self.shards)

    # -- client-facing -------------------------------------------------------

    def submit(self, request: Request, now: Optional[float] = None) -> None:
        """Route one request toward its owning shard(s)."""
        if now is None:
            now = self.clock()
        if self._monitor is not None:
            self._monitor.note_submitted(request, now)
        state = self._states.get(request.ta)
        if state is None:
            state = _TaState(ta=request.ta, incarnation=request.ta)
            self._states[request.ta] = state
            self._by_incarnation[request.ta] = state
        if request.operation.is_termination:
            state.termination = request
            self._route_queue.append((state, _TERM, now))
        else:
            state.statements.append(request)
            self._route_queue.append((state, len(state.statements) - 1, now))

    def should_run(self, now: Optional[float] = None) -> bool:
        if now is None:
            now = self.clock()
        if self._route_queue:
            return True
        for state in self._states.values():
            if state.parked_until is not None and now >= state.parked_until:
                return True
            if (
                state.coordinated
                and state.granted
                and state.parked_until is None
                and state.reserve_since is not None
                and now - state.reserve_since >= self._stall_timeout(state)
            ):
                return True
        return any(shard.should_run(now) for shard in self.shards)

    def next_recovery_due(self, now: Optional[float] = None) -> Optional[float]:
        if now is None:
            now = self.clock()
        deadlines: list[float] = []
        for shard in self.shards:
            due = shard.next_recovery_due(now)
            if due is not None:
                deadlines.append(due)
        for state in self._states.values():
            if state.parked_until is not None:
                deadlines.append(state.parked_until)
            elif (
                state.coordinated
                and state.granted
                and state.reserve_since is not None
            ):
                deadlines.append(
                    state.reserve_since + self._stall_timeout(state)
                )
        return min(deadlines) if deadlines else None

    def note_client_crashed(self, client_id: int, now: float) -> None:
        """Broadcast a client crash; the facade also marks its parked
        transactions (invisible to the shards) for orphan reaping."""
        for shard in self.shards:
            shard.note_client_crashed(client_id, now)
        for state in self._states.values():
            if state.parked_until is None:
                continue
            requests = state.statements or (
                [state.termination] if state.termination else []
            )
            if requests and requests[0].attrs.client_id == client_id:
                state.orphaned = True

    def note_client_recovered(self, client_id: int) -> None:
        for shard in self.shards:
            shard.note_client_recovered(client_id)

    # -- the scheduler step --------------------------------------------------

    def step(self, now: Optional[float] = None) -> SchedulerStepResult:
        """Step every shard once, merge the results, and run the
        cross-shard reserve-timeout sweep."""
        if now is None:
            now = self.clock()
        recovery = RecoveryActions()
        # Resume parked retries whose backoff expired (orphaned parked
        # transactions are reaped instead — no shard knows about them).
        for state in list(self._states.values()):
            if state.parked_until is None or now < state.parked_until:
                continue
            if state.orphaned:
                self._give_up(state, recovery, now, kind="orphans")
            else:
                self._resubmit(state, now)
        self._drain_route_queue()
        qualified: list[Request] = []
        denials: dict[int, str] = {}
        drained = pending_before = history_rows = 0
        query_seconds = 0.0
        handled: set[int] = set()
        for source, shard in enumerate(self.shards):
            shard_started = time.perf_counter()
            result = shard.step(now)
            self.shard_step_seconds[source] = (
                time.perf_counter() - shard_started
            )
            drained += result.drained
            pending_before += result.pending_before
            history_rows += result.history_rows
            query_seconds += result.query_seconds
            self.shard_query_seconds[source] = result.query_seconds
            for rid, reason in result.denials.items():
                denials[self._original_id(rid)] = reason
            for request in result.qualified:
                self._process_grant(source, request, qualified, now)
            for kind, entries in (
                ("timeouts", result.recovery.timeouts),
                ("orphans", result.recovery.orphans),
                ("sheds", result.recovery.sheds),
            ):
                for shard_ta, abort in entries:
                    self._translate_recovery(
                        kind, source, shard_ta, abort, recovery, handled, now
                    )
        self._reserve_sweep(now, recovery)
        merged = SchedulerStepResult(
            now=now,
            drained=drained,
            pending_before=pending_before,
            pending_after=sum(len(shard.pending) for shard in self.shards),
            history_rows=history_rows,
            qualified=qualified,
            query_seconds=query_seconds,
            denials=denials,
            recovery=recovery,
        )
        self.steps_run += 1
        if self._monitor is not None:
            self._monitor.after_step(self, merged, now)
        for hook in self.step_hooks:
            hook(merged)
        return merged

    def run_until_drained(
        self,
        max_steps: int = 10_000,
        on_batch: Optional[Callable[[SchedulerStepResult], None]] = None,
        time_step: float = 1.0,
    ) -> list[SchedulerStepResult]:
        """Step until no shard nor the facade holds live work.

        Time advances ``time_step`` per step so reserve timeouts and
        retry backoffs fire; with the default 1.0 and the default
        sub-second :class:`CrossShardPolicy` knobs, one idle step is
        enough to trip the cross-shard deadlock timeout."""
        results: list[SchedulerStepResult] = []
        for __ in range(max_steps):
            if not self._work_remains():
                return results
            result = self.step(now=float(len(results)) * time_step)
            results.append(result)
            if on_batch is not None:
                on_batch(result)
            if (
                result.batch_size == 0
                and result.drained == 0
                and not result.recovery
                and not self._timers_armed()
            ):
                raise SchedulerStalledError(
                    f"sharded scheduler stalled with {len(self.pending)} "
                    f"pending requests; denials: "
                    f"{result.denials or 'unattributed'}",
                    pending_snapshot=self._pending_snapshot(),
                    denials=dict(result.denials),
                    steps_run=self.steps_run,
                )
        raise SchedulerStalledError(
            f"not drained after {max_steps} steps",
            pending_snapshot=self._pending_snapshot(),
            denials=dict(results[-1].denials) if results else {},
            steps_run=self.steps_run,
        )

    # -- routing internals ---------------------------------------------------

    def _owner_of(self, state: _TaState, request: Request) -> int:
        if self.route == "home":
            if state.home is None:
                if request.obj != NO_OBJECT:
                    state.home = self.partitioner.shard_of(request.obj)
                else:
                    state.home = self.partitioner.fallback_for(state.ta)
            return state.home
        return self.partitioner.shard_of(request.obj)

    def _drain_route_queue(self) -> None:
        """Route everything submitted since the last step, in global
        submission order.  Routing is deferred to step time so a
        burst-submitted transaction is classified (single-shard vs
        coordinated) knowing every statement of the burst — ordered
        reserves then start from the true global lock order instead of
        discovering the shard span after the first eager forward."""
        queue, self._route_queue = self._route_queue, []
        for state, idx, submitted_at in queue:
            if self._states.get(state.ta) is not state:
                continue  # transaction already finished or aborted
            if idx == _TERM:
                self._maybe_forward_termination(state, submitted_at)
                continue
            if state.parked_until is not None or idx in state.routed:
                continue  # a parked resubmit re-routes everything itself
            state.routed.add(idx)
            self._route_data(state, idx, submitted_at)

    def _route_data(self, state: _TaState, idx: int, now: float) -> None:
        """Dispatch one data statement: eager forward, or (ordered
        reserves, coordinated transaction) enqueue for its turn."""
        request = state.statements[idx]
        owner = self._owner_of(state, request)
        if not state.coordinated:
            span = {self._owner_of(state, s) for s in state.statements}
            span |= state.owners
            if len(span) > 1:
                state.coordinated = True
                if self.metrics is not None:
                    self.metrics.incr("scheduler.xshard.coordinated")
        if (
            state.coordinated
            and self.route == "two-phase"
            and self._ordered_now(state)
        ):
            state.queued.append(idx)
            self._pump(state, now)
        else:
            self._forward_to(state, idx, owner, now)

    def _ordered_now(self, state: _TaState) -> bool:
        """Whether this transaction acquires reserves one at a time in
        global object order (see :attr:`CrossShardPolicy.reserve_mode`)."""
        mode = self.cross_shard.reserve_mode
        return mode == "ordered" or (mode == "escalate" and state.retries > 0)

    def _pump(self, state: _TaState, now: float) -> None:
        """Ordered sequential reserve: once every forwarded data
        statement is granted, forward the queued statement with the
        smallest object number (the global lock-acquisition order)."""
        if (
            not state.queued
            or state.parked_until is not None
            or len(state.granted) < state.forwarded
        ):
            return
        state.queued.sort(key=lambda i: (state.statements[i].obj, i))
        idx = state.queued.pop(0)
        owner = self._owner_of(state, state.statements[idx])
        self._forward_to(state, idx, owner, now)

    def _forward_to(
        self, state: _TaState, idx: int, owner: int, now: float
    ) -> None:
        request = state.statements[idx]
        local = state.shard_counts.get(owner, 0)
        if state.incarnation == state.ta and local == request.intrata:
            forwarded = request
        else:
            forwarded = replace(
                request,
                id=request.id
                if state.incarnation == state.ta
                else next(self._retry_request_ids),
                ta=state.incarnation,
                intrata=local,
            )
        state.shard_counts[owner] = local + 1
        state.owners.add(owner)
        state.forwarded += 1
        state.alias_ids[forwarded.id] = idx
        self._requests[forwarded.id] = (state, idx)
        self.shards[owner].submit(forwarded, now)
        if state.coordinated:
            # Progress-based stall timer: any forward restarts it, so
            # the reserve timeout measures time *stuck*, not the total
            # span of a (possibly long, merely queued) reservation.
            state.reserve_since = now

    def _maybe_forward_termination(self, state: _TaState, now: float) -> None:
        if (
            state.termination is None
            or state.term_forwarded
            or state.parked_until is not None
        ):
            return
        if state.coordinated:
            # Two-phase commit point: broadcast c/a only once every
            # data statement has been reserved (granted) everywhere, so
            # no shard releases locks while another is still reserving.
            if (
                state.forwarded < len(state.statements)
                or len(state.granted) < len(state.statements)
                or len(state.reported) < len(state.statements)
            ):
                return
        request = state.termination
        owners = set(state.owners)
        if not owners:
            owners = {self.partitioner.fallback_for(state.ta)}
        if state.incarnation == state.ta:
            term_id = request.id
        else:
            term_id = next(self._retry_request_ids)
        for owner in sorted(owners):
            local = state.shard_counts.get(owner, 0)
            if (
                state.incarnation == state.ta
                and local == request.intrata
                and len(owners) == 1
            ):
                forwarded = request
            else:
                forwarded = replace(
                    request, id=term_id, ta=state.incarnation, intrata=local
                )
            state.shard_counts[owner] = local + 1
            self.shards[owner].submit(forwarded, now)
        state.owners |= owners
        state.term_forwarded = True
        state.term_id = term_id
        state.term_owners = owners
        self._requests[term_id] = (state, _TERM)
        if self.metrics is not None and len(owners) > 1:
            self.metrics.incr("scheduler.xshard.broadcasts")

    def _process_grant(
        self,
        source: int,
        request: Request,
        qualified: list[Request],
        now: float,
    ) -> None:
        entry = self._requests.get(request.id)
        if entry is None:
            # A grant from an aborted incarnation that was still in a
            # shard queue, or a shard-synthesized row: nothing to route.
            if self.metrics is not None:
                self.metrics.incr("scheduler.xshard.stale_grants")
            return
        state, idx = entry
        if idx == _TERM:
            state.term_granted.add(source)
            if state.term_granted >= state.term_owners:
                qualified.append(state.termination)
                self._finish(state)
            return
        state.granted.add(idx)
        if not state.coordinated:
            if idx not in state.reported:
                state.reported.add(idx)
                qualified.append(state.statements[idx])
        else:
            # Release grants to the caller strictly in program order.
            for position in range(len(state.statements)):
                if position in state.reported:
                    continue
                if position in state.granted:
                    state.reported.add(position)
                    qualified.append(state.statements[position])
                else:
                    break
        if state.coordinated:
            if state.forwarded == len(state.statements) and len(
                state.granted
            ) == len(state.statements):
                state.reserve_since = None
            else:
                # A grant is progress: restart the stall timer.
                state.reserve_since = now
            self._pump(state, now)
        self._maybe_forward_termination(state, now)

    # -- cross-shard recovery ------------------------------------------------

    def _stall_timeout(self, state: _TaState) -> float:
        """Reserve-stall timeout for this transaction: optimistic for
        parallel acquirers, patient for ordered ones (which cannot
        deadlock among themselves — see ``ordered_patience``)."""
        timeout = self.cross_shard.reserve_timeout
        if self._ordered_now(state):
            timeout *= self.cross_shard.ordered_patience
        return timeout

    def _reserve_sweep(self, now: float, recovery: RecoveryActions) -> None:
        for state in list(self._states.values()):
            if (
                not state.coordinated
                # A transaction holding no granted reserve blocks nobody,
                # so it cannot be part of a deadlock cycle — aborting it
                # would be pure churn.  Only lock *holders* are swept.
                or not state.granted
                or state.parked_until is not None
                or state.reserve_since is None
                or now - state.reserve_since < self._stall_timeout(state)
            ):
                continue
            if state.retries >= self.cross_shard.max_retries:
                self._give_up(state, recovery, now, kind="timeouts")
            else:
                self._park(state, now)

    def _abort_incarnation(self, state: _TaState, now: float, reason: str) -> None:
        for owner in sorted(state.owners):
            self.shards[owner].abort_transaction(
                state.incarnation, now, reason=reason
            )
        for fid in list(state.alias_ids):
            self._requests.pop(fid, None)
        state.alias_ids.clear()
        if state.term_id is not None:
            self._requests.pop(state.term_id, None)
        self._by_incarnation.pop(state.incarnation, None)
        state.owners = set()
        state.shard_counts = {}
        state.forwarded = 0
        state.granted = set()
        state.queued = []
        state.term_forwarded = False
        state.term_id = None
        state.term_owners = set()
        state.term_granted = set()
        state.reserve_since = None

    def _park(self, state: _TaState, now: float) -> None:
        self._abort_incarnation(state, now, reason="xshard-retry")
        state.retries += 1
        state.parked_until = now + self.cross_shard.park_delay_for(state.retries)
        state.incarnation = next(self._incarnation_ids)
        self._by_incarnation[state.incarnation] = state
        if self.metrics is not None:
            self.metrics.incr("scheduler.xshard.retries")

    def _resubmit(self, state: _TaState, now: float) -> None:
        state.parked_until = None
        state.routed = set(range(len(state.statements)))
        if (
            state.coordinated
            and self.route == "two-phase"
            and self._ordered_now(state)
        ):
            state.queued = list(range(len(state.statements)))
            self._pump(state, now)
        else:
            for idx in range(len(state.statements)):
                self._route_data(state, idx, now)
        self._maybe_forward_termination(state, now)

    def _give_up(
        self,
        state: _TaState,
        recovery: RecoveryActions,
        now: float,
        kind: str,
    ) -> None:
        self._abort_incarnation(state, now, reason=f"xshard-{kind}")
        abort = Request(
            id=next(self._facade_abort_ids),
            ta=state.ta,
            intrata=0,
            operation=Operation.ABORT,
        )
        self._surface_abort(state, abort, recovery, kind, now)
        if self.metrics is not None:
            self.metrics.incr("scheduler.xshard.giveups")

    def _translate_recovery(
        self,
        kind: str,
        source: int,
        shard_ta: int,
        abort: Request,
        recovery: RecoveryActions,
        handled: set[int],
        now: float,
    ) -> None:
        """A shard's recovery machinery aborted one of our incarnations
        (deadlock timeout, orphan lease, admission shed): mirror the
        abort to the other owning shards and surface it once, keyed by
        the client's original transaction number."""
        state = self._by_incarnation.get(shard_ta)
        if state is None:
            getattr(recovery, kind).append((shard_ta, abort))
            return
        if state.ta in handled:
            return
        handled.add(state.ta)
        terminal = "shed" if kind == "sheds" else "aborted"
        for owner in sorted(state.owners):
            if owner != source:
                self.shards[owner].abort_transaction(
                    state.incarnation, now, reason=f"xshard-{kind}", kind=terminal
                )
        for fid in list(state.alias_ids):
            self._requests.pop(fid, None)
        if state.term_id is not None:
            self._requests.pop(state.term_id, None)
        original = abort if abort.ta == state.ta else replace(abort, ta=state.ta)
        self._surface_abort(state, original, recovery, kind, now)

    def _surface_abort(
        self,
        state: _TaState,
        abort: Request,
        recovery: RecoveryActions,
        kind: str,
        now: float,
    ) -> None:
        terminal = "shed" if kind == "sheds" else "aborted"
        unreported = [
            state.statements[i].id
            for i in range(len(state.statements))
            if i not in state.reported
        ]
        if state.termination is not None:
            unreported.append(state.termination.id)
        if self._monitor is not None:
            if unreported:
                self._monitor.note_terminal(unreported, terminal, now)
            self._monitor.note_dispatch(now, abort)
        getattr(recovery, kind).append((state.ta, abort))
        self._finish(state)

    def _finish(self, state: _TaState) -> None:
        for fid in list(state.alias_ids):
            self._requests.pop(fid, None)
        if state.term_id is not None:
            self._requests.pop(state.term_id, None)
        self._states.pop(state.ta, None)
        self._by_incarnation.pop(state.incarnation, None)
        self._by_incarnation.pop(state.ta, None)

    # -- introspection -------------------------------------------------------

    def _original_id(self, forwarded_id: int) -> int:
        entry = self._requests.get(forwarded_id)
        if entry is None:
            return forwarded_id
        state, idx = entry
        if idx == _TERM:
            return state.termination.id if state.termination else forwarded_id
        return state.statements[idx].id

    def _work_remains(self) -> bool:
        if self._route_queue:
            return True
        if any(
            len(shard.incoming) or len(shard.pending) for shard in self.shards
        ):
            return True
        return any(
            state.parked_until is not None for state in self._states.values()
        )

    def _timers_armed(self) -> bool:
        return any(
            state.parked_until is not None
            or (state.coordinated and state.reserve_since is not None)
            for state in self._states.values()
        )

    def _pending_snapshot(self) -> list[Request]:
        return [
            request
            for shard in self.shards
            for request in shard._pending_snapshot()
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedScheduler(shards={len(self.shards)}, route={self.route!r}, "
            f"protocol={self.protocol.name})"
        )
