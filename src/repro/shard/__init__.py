"""Sharded multi-scheduler scale-out (ROADMAP item 2).

Partitions the request stream by object-id hash into N independent
:class:`~repro.core.scheduler.DeclarativeScheduler` shards behind a
facade that still looks like one scheduler — see
:mod:`repro.shard.scheduler` for the routing/two-phase design and
:mod:`repro.shard.partition` for the ownership map.  Build one through
``repro.api.make_scheduler(..., shards=N)`` or serve traffic with
``repro.api.open_service(..., shards=N)`` / ``repro serve --shards N``.
"""

from repro.shard.partition import HashPartitioner, shard_of_object
from repro.shard.scheduler import ROUTES, CrossShardPolicy, ShardedScheduler

__all__ = [
    "CrossShardPolicy",
    "HashPartitioner",
    "ROUTES",
    "ShardedScheduler",
    "shard_of_object",
]
