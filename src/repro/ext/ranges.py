"""Key-range request scheduling (paper Section 5 / reference [17]).

A :class:`RangeRequest` touches the closed key interval ``[lo, hi]``
instead of a single object.  Two range accesses conflict when their
intervals overlap and at least one writes — so the declarative SS2PL
rule is Listing 1's with the object-equality join replaced by two
comparisons (``Lo1 <= Hi2 AND Lo2 <= Hi1``).  The schema extends the
paper's Table 2 by splitting ``Object`` into ``lo``/``hi``; a
single-object request is the degenerate ``lo == hi`` case, and on such
workloads the range protocol provably coincides with Listing 1 (tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.datalog.engine import Database, evaluate
from repro.datalog.program import Program
from repro.model.request import Operation
from repro.protocols.base import Capabilities, Protocol, ProtocolDecision
from repro.relalg.table import Table

#: Extended Table 2 schema for range requests.
RANGE_COLUMNS = ("id", "ta", "intrata", "operation", "lo", "hi")

RANGE_SS2PL_RULES = """\
finished(Ta) :- history(_, Ta, _, "c", _, _).
finished(Ta) :- history(_, Ta, _, "a", _, _).
wlocked(Lo, Hi, Ta) :- history(_, Ta, _, "w", Lo, Hi), not finished(Ta).
rlocked(Lo, Hi, Ta) :- history(_, Ta, _, "r", Lo, Hi), not finished(Ta).
denied(Id) :- requests(Id, Ta, _, _, Lo, Hi),
              wlocked(Lo2, Hi2, Ta2), Ta != Ta2, Lo <= Hi2, Lo2 <= Hi.
denied(Id) :- requests(Id, Ta, _, "w", Lo, Hi),
              rlocked(Lo2, Hi2, Ta2), Ta != Ta2, Lo <= Hi2, Lo2 <= Hi.
denied(Id2) :- requests(Id2, Ta2, _, Op2, Lo2, Hi2),
               requests(_, Ta1, _, Op1, Lo1, Hi1), Ta2 > Ta1,
               conflictops(Op1, Op2), Lo1 <= Hi2, Lo2 <= Hi1.
conflictops("w", "w").
conflictops("w", "r").
conflictops("r", "w").
qualified(Id, Ta, I, Op, Lo, Hi) :- requests(Id, Ta, I, Op, Lo, Hi),
                                    not denied(Id).
"""


@dataclass(frozen=True, slots=True)
class RangeRequest:
    """One range request — a row of the extended schema."""

    id: int
    ta: int
    intrata: int
    operation: Operation
    lo: int = -1
    hi: int = -1

    def __post_init__(self) -> None:
        if self.operation.is_data_access:
            if self.lo < 0 or self.hi < self.lo:
                raise ValueError(
                    f"data access needs a valid range, got [{self.lo}, {self.hi}]"
                )

    @property
    def is_write(self) -> bool:
        return self.operation is Operation.WRITE

    def overlaps(self, other: "RangeRequest") -> bool:
        if not (self.operation.is_data_access and other.operation.is_data_access):
            return False
        return self.lo <= other.hi and other.lo <= self.hi

    def conflicts_with(self, other: "RangeRequest") -> bool:
        if self.ta == other.ta or not self.overlaps(other):
            return False
        return self.is_write or other.is_write

    def as_row(self) -> tuple:
        return (
            self.id, self.ta, self.intrata, self.operation.value,
            self.lo, self.hi,
        )

    @classmethod
    def from_row(cls, row: Sequence) -> "RangeRequest":
        rid, ta, intrata, op, lo, hi = row[:6]
        return cls(
            int(rid), int(ta), int(intrata),
            Operation.from_code(str(op)), int(lo), int(hi),
        )

    def __str__(self) -> str:
        code = self.operation.value
        if self.operation.is_data_access:
            return f"{code}{self.ta}[{self.lo}..{self.hi}]"
        return f"{code}{self.ta}"


def make_range_tables() -> tuple[Table, Table]:
    """Fresh (requests, history) tables in the extended schema."""
    return (
        Table("requests", list(RANGE_COLUMNS)),
        Table("history", list(RANGE_COLUMNS)),
    )


class RangeSS2PLProtocol(Protocol):
    """SS2PL over key-range requests, as the Datalog rules above."""

    name = "ss2pl-ranges"
    description = "SS2PL for key-range statements (interval overlap locks)"
    capabilities = Capabilities(
        performance=True, qos=True, declarative=True, flexible=True,
        high_scalability=True,
    )
    declarative_source = RANGE_SS2PL_RULES

    def __init__(self) -> None:
        self._program = Program.parse(RANGE_SS2PL_RULES)

    def schedule(self, requests: Table, history: Table) -> ProtocolDecision:
        db = Database()
        db.add_facts("requests", requests.rows)
        db.add_facts("history", history.rows)
        evaluate(self._program, db)
        rows = sorted(db.facts("qualified"))
        decision = ProtocolDecision()
        decision.qualified = [RangeRequest.from_row(row) for row in rows]
        for fact in db.facts("denied"):
            decision.denials[fact[0]] = "range conflict"
        return decision


def brute_force_qualified(
    pending: Iterable[RangeRequest], executed: Iterable[RangeRequest]
) -> list[int]:
    """Reference implementation for tests: ids of pending requests an
    SS2PL range scheduler may admit, by direct rule application."""
    executed = list(executed)
    finished = {
        r.ta for r in executed if r.operation.is_termination
    }
    active = [r for r in executed if r.ta not in finished]
    pending = sorted(pending, key=lambda r: (r.ta, r.intrata))
    qualified: list[int] = []
    for request in pending:
        if not request.operation.is_data_access:
            qualified.append(request.id)
            continue
        blocked = any(
            held.operation.is_data_access
            and request.conflicts_with(held)
            and (held.is_write or request.is_write)
            for held in active
        )
        if not blocked:
            # Intra-batch: any earlier-TA pending request that conflicts.
            blocked = any(
                other.ta < request.ta and request.conflicts_with(other)
                for other in pending
                if other.operation.is_data_access
            )
        if not blocked:
            qualified.append(request.id)
    return sorted(qualified)
