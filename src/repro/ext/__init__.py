"""Extensions beyond the paper's prototype scope.

The paper's Section 5 lists what comes after the naive prototype:
"different workloads with more complex statements have to be analyzed",
citing Lomet & Mokbel's key-range locking [17] for identifying the data
a statement touches.  This package holds those forward-looking pieces:

* :mod:`repro.ext.ranges` — declarative scheduling of **key-range
  requests** (statements that touch a contiguous key interval, e.g.
  range scans and range updates): the SS2PL rule generalizes from
  object equality to interval overlap with two extra comparisons,
  demonstrating that "more complex statements" are again a rule tweak,
  not a scheduler rewrite.
"""

from repro.ext.ranges import (
    RANGE_SS2PL_RULES,
    RangeRequest,
    RangeSS2PLProtocol,
    make_range_tables,
)

__all__ = [
    "RANGE_SS2PL_RULES",
    "RangeRequest",
    "RangeSS2PLProtocol",
    "make_range_tables",
]
