"""The one public construction surface of the reproduction.

Every in-repo caller — the CLI, the scenario runner, benchmarks,
examples — builds protocols, triggers, schedulers, and services through
the helpers here, and external code should too::

    import repro.api as api

    scheduler = api.make_scheduler("ss2pl-listing1", backend="compiled-delta")

    async with api.open_service("ss2pl-listing1",
                                backend="compiled-delta",
                                trigger="hybrid:0.005,32") as service:
        async with service.pool.session() as session:
            ticket = await session.request("w", 7)
            await service.await_grant(ticket)
            service.release(ticket)

The string mini-languages accepted everywhere (CLI flags use the same
spellings):

* **protocol** — a spec name from the registry (``ss2pl-listing1``,
  ``2pl-conservative``, …), a wrapper prefix ``sla:<spec>`` /
  ``adaptive:<strict>,<relaxed>``, or a live
  :class:`~repro.protocols.base.Protocol` instance passed through.
* **trigger** — ``fill:<threshold>``, ``time:<interval>``,
  ``hybrid:<interval>,<threshold>``, a
  :class:`~repro.scenarios.spec.TriggerSpec`, or a live
  :class:`~repro.core.triggers.TriggerPolicy` instance.

Pairing validation is fail-fast: :func:`validate_pairing` (used by
every CLI entry point) raises the backend's own declared skip reason
when a spec cannot run on the chosen engine, instead of silently
falling back.

This module must stay import-light: it may import leaf modules, but
never :mod:`repro.scenarios` at top level (the scenario runner imports
*us*).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.backends import (
    BackendError,
    backend_names,
    build_protocol,
    supported_backends,
)
from repro.core.scheduler import (
    DeclarativeScheduler,
    SchedulerConfig,
    SchedulerCostModel,
)
from repro.core.triggers import (
    FillLevelTrigger,
    HybridTrigger,
    TimeLapseTrigger,
    TriggerPolicy,
)
from repro.faults.admission import AdmissionPolicy
from repro.faults.recovery import RecoveryPolicy
from repro.metrics.collector import MetricsCollector
from repro.protocols.base import Protocol
from repro.protocols.spec import spec_names
from repro.serve.service import SchedulerService
from repro.shard.scheduler import CrossShardPolicy, ShardedScheduler

__all__ = [
    "AdmissionPolicy",
    "BackendError",
    "CrossShardPolicy",
    "DeclarativeScheduler",
    "MetricsCollector",
    "RecoveryPolicy",
    "SchedulerConfig",
    "SchedulerCostModel",
    "SchedulerService",
    "ShardedScheduler",
    "analyze",
    "backend_names",
    "build_protocol",
    "make_protocol",
    "make_scheduler",
    "make_trigger",
    "open_service",
    "spec_names",
    "supported_backends",
    "validate_pairing",
]


# -- protocols -------------------------------------------------------------


def make_protocol(
    protocol: Union[str, Protocol],
    backend: Optional[str] = None,
    *,
    clients: int = 8,
    **backend_options,
) -> Protocol:
    """Resolve a protocol string into a live :class:`Protocol`.

    Accepts a plain spec name, the ``sla:<spec>`` and
    ``adaptive:<strict>,<relaxed>`` wrapper prefixes (``clients`` sizes
    the adaptive protocol's load watermarks), or an already-built
    Protocol instance (returned unchanged — composed protocols pass
    through the same code paths as names).
    """
    if isinstance(protocol, Protocol):
        return protocol
    name = protocol
    if name.startswith("sla:"):
        from repro.protocols.sla import SLAOrderingProtocol

        return SLAOrderingProtocol(build_protocol(name[4:], backend))
    if name.startswith("adaptive:"):
        from repro.protocols.adaptive import AdaptiveConsistencyProtocol

        strict_name, _, relaxed_name = name[len("adaptive:"):].partition(",")
        if not relaxed_name:
            raise ValueError(
                "adaptive protocol needs 'adaptive:<strict>,<relaxed>', "
                f"got {name!r}"
            )
        return AdaptiveConsistencyProtocol(
            strict=build_protocol(strict_name, backend),
            relaxed=build_protocol(relaxed_name, backend),
            high_watermark=max(2, clients),
            low_watermark=max(1, clients // 4),
        )
    return build_protocol(name, backend, **backend_options)


def validate_pairing(
    protocol: Union[str, Protocol, None], backend: Optional[str]
) -> None:
    """Fail fast on a spec×backend pairing the backend declares it
    cannot run, raising :class:`BackendError` with the backend's own
    skip reason (instead of letting a caller fall back silently).

    Wrapper prefixes validate their inner spec(s); live Protocol
    instances and ``None`` protocols validate trivially (the backend
    name itself is still checked against the registry).
    """
    from repro.backends import resolve_backend

    if backend is not None:
        resolve_backend(backend)  # unknown names raise, listing choices
    if protocol is None or isinstance(protocol, Protocol):
        return
    name = protocol
    if name.startswith("sla:"):
        name = name[4:]
    elif name.startswith("adaptive:"):
        strict_name, _, relaxed_name = name[len("adaptive:"):].partition(",")
        validate_pairing(strict_name, backend)
        if relaxed_name:
            validate_pairing(relaxed_name, backend)
        return
    # Building binds spec to backend; an unsupported pairing raises the
    # backend's declared reason.  The throwaway instance is cheap (all
    # backends lower lazily or at trial speed).
    build_protocol(name, backend)


# -- triggers --------------------------------------------------------------


def make_trigger(trigger: Union[str, TriggerPolicy, None]) -> Optional[TriggerPolicy]:
    """Resolve a trigger description into a live policy.

    ``None`` passes through (the scheduler's default applies);
    instances pass through; strings use the CLI spelling —
    ``fill:20``, ``time:0.02``, ``hybrid:0.02,20`` — and
    :class:`~repro.scenarios.spec.TriggerSpec` objects build
    themselves.
    """
    if trigger is None or isinstance(trigger, TriggerPolicy):
        return trigger
    build = getattr(trigger, "build", None)
    if callable(build):  # a scenarios.spec.TriggerSpec (duck-typed: no
        return build()  # top-level scenarios import allowed here)
    kind, _, arg = str(trigger).partition(":")
    try:
        if kind == "fill":
            return FillLevelTrigger(int(arg))
        if kind == "time":
            return TimeLapseTrigger(float(arg))
        if kind == "hybrid":
            interval, _, threshold = arg.partition(",")
            return HybridTrigger(float(interval), int(threshold))
    except ValueError as error:
        raise ValueError(f"bad trigger {trigger!r}: {error}") from None
    raise ValueError(
        f"unknown trigger {trigger!r}: expected 'fill:<threshold>', "
        "'time:<interval>' or 'hybrid:<interval>,<threshold>'"
    )


# -- schedulers & services -------------------------------------------------


def make_scheduler(
    protocol: Union[str, Protocol],
    backend: Optional[str] = None,
    *,
    trigger: Union[str, TriggerPolicy, None] = None,
    config: SchedulerConfig = SchedulerConfig(),
    metrics: Optional[MetricsCollector] = None,
    recovery: Optional[RecoveryPolicy] = None,
    admission: Optional[AdmissionPolicy] = None,
    clients: int = 8,
    clock=None,
    shards: Optional[int] = None,
    shard_route: str = "two-phase",
    cross_shard: Optional[CrossShardPolicy] = None,
    **backend_options,
) -> Union[DeclarativeScheduler, ShardedScheduler]:
    """Build a scheduler from names — the one construction path.  All
    arguments accept the string spellings documented in the module
    docstring.

    ``shards=None`` (default) returns a plain
    :class:`DeclarativeScheduler`.  ``shards=N`` returns a
    :class:`~repro.shard.scheduler.ShardedScheduler` over N independent
    schedulers — each with its own freshly built protocol and trigger —
    partitioned by object-id hash, with ``shard_route`` choosing the
    multi-object path (``"two-phase"`` reserve/commit or the unsound
    ``"home"`` comparison baseline) and ``cross_shard`` tuning the
    two-phase timeouts/backoff.  Protocol and trigger *instances*
    cannot be sharded (shards must not share mutable policy state);
    pass registry names / string spellings instead.
    """
    if shards is None:
        return DeclarativeScheduler(
            make_protocol(protocol, backend, clients=clients, **backend_options),
            trigger=make_trigger(trigger),
            config=config,
            metrics=metrics,
            recovery=recovery,
            admission=admission,
            clock=clock,
        )
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > 1 and isinstance(protocol, Protocol):
        raise ValueError(
            "cannot shard a live Protocol instance; pass a registry name "
            "so each shard builds its own"
        )
    if shards > 1 and isinstance(trigger, TriggerPolicy):
        raise ValueError(
            "cannot share one TriggerPolicy instance across shards; pass "
            "a trigger spec string so each shard builds its own"
        )
    shard_schedulers = [
        DeclarativeScheduler(
            make_protocol(protocol, backend, clients=clients, **backend_options),
            trigger=make_trigger(trigger),
            config=config,
            metrics=metrics,
            recovery=recovery,
            admission=admission,
            clock=clock,
        )
        for __ in range(shards)
    ]
    return ShardedScheduler(
        shard_schedulers,
        route=shard_route,
        cross_shard=cross_shard,
        metrics=metrics,
        clock=clock,
    )


def open_service(
    protocol: Union[str, Protocol],
    backend: Optional[str] = None,
    *,
    trigger: Union[str, TriggerPolicy, None] = None,
    recovery: Optional[RecoveryPolicy] = None,
    admission: Optional[AdmissionPolicy] = None,
    max_sessions: int = 8,
    max_pipeline: int = 8,
    max_linger: float = 0.05,
    config: SchedulerConfig = SchedulerConfig(),
    metrics: Optional[MetricsCollector] = None,
    check_invariants: bool = False,
    shards: Optional[int] = None,
    shard_route: str = "two-phase",
    cross_shard: Optional[CrossShardPolicy] = None,
    **backend_options,
) -> SchedulerService:
    """Build an (unstarted) :class:`SchedulerService` over a freshly
    constructed scheduler.  Use as an async context manager::

        async with api.open_service("ss2pl-listing1", "compiled-delta") as svc:
            ...

    or call :meth:`~repro.serve.service.SchedulerService.start` /
    ``stop`` explicitly.  ``recovery`` defaults to a
    :class:`RecoveryPolicy` — a service without timeout aborts and
    orphan reaping would wedge on the first crashed client — pass one
    explicitly to tune it.

    ``shards=N`` serves from a
    :class:`~repro.shard.scheduler.ShardedScheduler` instead: pooled
    sessions route transparently, ``--check-invariants`` keeps working
    globally (per-shard monitors plus the cross-shard grant-union
    check).  See :func:`make_scheduler` for ``shard_route`` /
    ``cross_shard``.
    """
    if recovery is None:
        recovery = RecoveryPolicy()
    scheduler = make_scheduler(
        protocol,
        backend,
        trigger=trigger,
        config=config,
        metrics=metrics,
        recovery=recovery,
        admission=admission,
        clients=max_sessions,
        shards=shards,
        shard_route=shard_route,
        cross_shard=cross_shard,
        **backend_options,
    )
    return SchedulerService(
        scheduler,
        max_sessions=max_sessions,
        max_pipeline=max_pipeline,
        max_linger=max_linger,
        check_invariants=check_invariants,
    )


# -- static analysis --------------------------------------------------------


def analyze(specs: bool = True, repo: bool = True):
    """Run the static analyzer and return its
    :class:`~repro.analysis.AnalysisReport` (the spec/plan verifier,
    the predicted spec × backend matrix with live cross-check, and the
    repo determinism lint — what ``repro analyze`` prints).

    Imported lazily: the analysis package walks the planner and backend
    registries, which this import-light module must not pull in at top
    level.
    """
    from repro.analysis import run_analysis

    return run_analysis(specs=specs, repo=repo)
