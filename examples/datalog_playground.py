#!/usr/bin/env python3
"""Write your own scheduling protocol — in Datalog or SDL.

The paper's thesis is that new protocols should be *rules*, not code.
This example defines a custom protocol two ways and runs both:

1. raw Datalog: "exclusive writer" — at most one transaction may have
   uncommitted writes at a time, reads are free (a crude but valid
   single-writer consistency model);
2. SDL: the same SS2PL the paper spends 40+ SQL lines on, in 4 lines.

Run:  python examples/datalog_playground.py
"""

import repro.api as api
from repro import SDLProtocol, SDL_SS2PL, make_transaction
from repro.datalog import Database, Program, evaluate
from repro.model.request import Request
from repro.protocols.base import Protocol, ProtocolDecision

EXCLUSIVE_WRITER_RULES = """\
finished(Ta) :- history(_, Ta, _, "c", _).
finished(Ta) :- history(_, Ta, _, "a", _).
writer(Ta) :- history(_, Ta, _, "w", _), not finished(Ta).
otherwriter(Ta) :- writer(Ta2), requests(_, Ta, _, _, _), Ta != Ta2.
denied(Id) :- requests(Id, Ta, _, "w", _), otherwriter(Ta).
denied(Id2) :- requests(Id2, Ta2, _, "w", _), requests(_, Ta1, _, "w", _),
               Ta2 > Ta1.
qualified(Id, Ta, I, Op, Obj) :- requests(Id, Ta, I, Op, Obj), not denied(Id).
"""


class ExclusiveWriterProtocol(Protocol):
    """At most one transaction with uncommitted writes, system-wide."""

    name = "exclusive-writer"
    description = "single-writer consistency in 8 Datalog rules"
    declarative_source = EXCLUSIVE_WRITER_RULES

    def __init__(self) -> None:
        self._program = Program.parse(EXCLUSIVE_WRITER_RULES)

    def schedule(self, requests, history) -> ProtocolDecision:
        db = Database()
        db.add_facts("requests", requests.rows)
        db.add_facts("history", history.rows)
        evaluate(self._program, db)
        return ProtocolDecision(
            qualified=[Request.from_row(r) for r in sorted(db.facts("qualified"))]
        )


def drive(protocol: Protocol) -> None:
    print(f"--- {protocol.name}: {protocol.description}")
    scheduler = api.make_scheduler(protocol)
    # Two open writers on different objects plus one open reader —
    # clients submit their commits later, like real sessions.
    for txn in (
        make_transaction(1, [("w", 1)], terminate="", start_id=1),
        make_transaction(2, [("w", 2)], terminate="", start_id=11),
        make_transaction(3, [("r", 1)], terminate="", start_id=21),
    ):
        for request in txn:
            scheduler.submit(request)

    def step(label: str) -> None:
        batch = scheduler.step().qualified
        print(f"  {label}: " + (" ".join(map(str, batch)) or "(all blocked)"))

    step("burst submitted ")
    # T1 commits; whatever waited on it can go next round.
    for request in make_transaction(1, [], terminate="c", start_id=31):
        scheduler.submit(request)
    step("after c1 queued ")
    step("after c1 applied")
    print()


def main() -> None:
    drive(ExclusiveWriterProtocol())
    # Under exclusive-writer, w1 and w2 cannot be in flight together —
    # unlike SS2PL, where they can (different objects):
    drive(SDLProtocol(SDL_SS2PL))
    print("same scheduler component, two consistency models, zero "
          "imperative scheduling code.")


if __name__ == "__main__":
    main()
