#!/usr/bin/env python3
"""Reproduce the paper's evaluation end-to-end (scaled-down).

Runs every table/figure of the paper with reduced parameters so the
whole script finishes in about a minute; the benchmark suite
(``pytest benchmarks/ --benchmark-only``) runs the full-scale versions.

Run:  python examples/paper_experiments.py
"""

from repro.bench import (
    run_crossover,
    run_declarative_overhead,
    run_figure2,
    run_table1,
    run_table2,
)


def main() -> None:
    print("=" * 78)
    print("E1 / Table 1")
    print("=" * 78)
    print(run_table1())

    print()
    print("=" * 78)
    print("E2 / Table 2")
    print("=" * 78)
    print(run_table2())

    print()
    print("=" * 78)
    print("E3-E4 / Figure 2 + Section 4.2.2 (scaled: 5 client counts)")
    print("=" * 78)
    print(run_figure2(client_counts=(1, 100, 300, 500, 600), duration=240.0))

    print()
    print("=" * 78)
    print("E5 / Section 4.3.2 declarative overhead")
    print("=" * 78)
    print(run_declarative_overhead(client_counts=(300, 500), repetitions=2))

    print()
    print("=" * 78)
    print("E6 / Section 4.4 crossover")
    print("=" * 78)
    print(run_crossover(client_counts=(300, 400, 500), duration=240.0))


if __name__ == "__main__":
    main()
