#!/usr/bin/env python3
"""Beyond the paper's prototype: range statements + explainable denials.

Section 5 of the paper says "different workloads with more complex
statements have to be analyzed", citing key-range locking [17].  This
example schedules *range* statements (each touching a key interval)
with the range-SS2PL rule set — two comparisons more than Listing 1 —
and then asks the Datalog engine to *explain* a denial, turning the
declarative rules into an audit trail.

Run:  python examples/range_scans.py
"""

from repro.datalog import Database, Program, evaluate, explain
from repro.ext.ranges import (
    RANGE_SS2PL_RULES,
    RangeRequest,
    RangeSS2PLProtocol,
    make_range_tables,
)
from repro.model.request import Operation


def main() -> None:
    requests, history = make_range_tables()

    # T1 is mid-flight: it has updated the key range [100, 199].
    history.insert(
        RangeRequest(1, 1, 0, Operation.WRITE, 100, 199).as_row()
    )

    # Three new range statements arrive concurrently.
    scan_overlapping = RangeRequest(2, 2, 0, Operation.READ, 150, 250)
    scan_disjoint = RangeRequest(3, 3, 0, Operation.READ, 200, 300)
    update_disjoint = RangeRequest(4, 4, 0, Operation.WRITE, 0, 99)
    for request in (scan_overlapping, scan_disjoint, update_disjoint):
        requests.insert(request.as_row())

    protocol = RangeSS2PLProtocol()
    decision = protocol.schedule(requests, history)
    print("qualified:", ", ".join(str(r) for r in decision.qualified))
    print("denied   :", sorted(decision.denials))
    assert sorted(r.id for r in decision.qualified) == [3, 4]
    assert set(decision.denials) == {2}

    # Why was the overlapping scan denied?  Ask the engine.
    program = Program.parse(RANGE_SS2PL_RULES)
    db = Database()
    db.add_facts("requests", requests.rows)
    db.add_facts("history", history.rows)
    evaluate(program, db)
    print("\nwhy was request 2 denied?\n")
    print(explain(program, db, "denied", (2,)).format())
    print(
        "\nthe denial traces to T1's uncommitted write lock on "
        "[100, 199] overlapping the scan's [150, 250] — straight from "
        "the rules, no scheduler code to read."
    )


if __name__ == "__main__":
    main()
