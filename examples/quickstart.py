#!/usr/bin/env python3
"""Quickstart: schedule transactions declaratively and verify correctness.

Builds the paper's Figure 1 stack in a few lines: transactions are
submitted to the middleware scheduler, the SS2PL protocol (the paper's
Listing 1) decides set-at-a-time which requests may execute, and the
emitted schedule is checked serializable and strict with the textbook
analyzers.

Run:  python examples/quickstart.py
"""

import repro.api as api
from repro import (
    Schedule,
    is_conflict_serializable,
    is_strict,
    make_transaction,
)


def main() -> None:
    # The one public construction surface: spec name (+ optional
    # backend/trigger strings), same spellings as the CLI flags.
    scheduler = api.make_scheduler("ss2pl")

    # Three transactions; T1 and T2 conflict on object 10, T3 is disjoint.
    t1 = make_transaction(1, [("r", 10), ("w", 10)], start_id=1)
    t2 = make_transaction(2, [("w", 10), ("w", 20)], start_id=101)
    t3 = make_transaction(3, [("r", 30), ("w", 31)], start_id=201)

    for transaction in (t1, t2, t3):
        for request in transaction:
            scheduler.submit(request)

    emitted = Schedule()
    print("scheduler steps (SS2PL, set-at-a-time):")
    for step_number in range(1, 10):
        if len(scheduler.incoming) == 0 and len(scheduler.pending) == 0:
            break
        result = scheduler.step(now=float(step_number))
        emitted.extend(result.qualified)
        batch = " ".join(str(r) for r in result.qualified) or "(blocked)"
        print(
            f"  step {step_number}: qualified {result.batch_size:2d} "
            f"requests | {batch}"
        )

    print(f"\nfull emitted schedule: {emitted}")
    print(f"conflict serializable: {is_conflict_serializable(emitted)}")
    print(f"strict (SS2PL):        {is_strict(emitted)}")
    assert is_conflict_serializable(emitted) and is_strict(emitted)

    # T2's write on object 10 had to wait for T1's commit:
    positions = {str(r): i for i, r in enumerate(emitted)}
    assert positions["w2[10]"] > positions["c1"], "w2[10] ran before c1!"
    print("\nw2[10] correctly waited for c1 — locks were honoured "
          "without any lock manager: just a query over request data.")


if __name__ == "__main__":
    main()
