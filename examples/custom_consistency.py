#!/usr/bin/env python3
"""Application-specific consistency: a ticket shop with bounded oversell.

The paper's Section 2 argues hotel/flight reservation systems and web
shops need *application-specific* consistency rather than full ACID.
Here a ticket shop allows at most 3 concurrent uncommitted reservations
per event (overbooking allowance) — one declarative rule, not a custom
scheduler.  We submit a burst of reservations against two hot events
and watch the protocol throttle exactly the overfull one.

Run:  python examples/custom_consistency.py
"""

import repro.api as api
from repro import SchedulerConfig
from repro.model.request import Operation, Request
from repro.protocols.app_consistency import BoundedOversellProtocol

EVENT_ROCK_CONCERT = 1
EVENT_POETRY_NIGHT = 2


def reservation(request_id: int, ta: int, event: int) -> Request:
    return Request(request_id, ta, 0, Operation.WRITE, event)


def main() -> None:
    protocol = BoundedOversellProtocol(allowance=3)
    print("protocol rules:\n" + protocol.declarative_source)

    # Custom protocol instances route through the same public surface
    # as registry names.
    scheduler = api.make_scheduler(
        protocol, config=SchedulerConfig(prune_history=False)
    )

    # 6 customers race for the rock concert, 2 for poetry night.
    rid = 1
    for ta in range(1, 7):
        scheduler.submit(reservation(rid, ta, EVENT_ROCK_CONCERT))
        rid += 1
    for ta in range(7, 9):
        scheduler.submit(reservation(rid, ta, EVENT_POETRY_NIGHT))
        rid += 1

    first = scheduler.step()
    granted = [r.ta for r in first.qualified if r.obj == EVENT_ROCK_CONCERT]
    print(f"\nburst of 6 rock-concert reservations -> granted now: {granted}")
    assert len(granted) == 3, "allowance of 3 must cap the burst"
    print(f"denied (queued for later): {sorted(first.denials)}")
    print(
        "poetry night unaffected: "
        f"{[r.ta for r in first.qualified if r.obj == EVENT_POETRY_NIGHT]}"
    )

    # One rock-concert holder commits; once the commit has executed, a
    # seat frees up for the queued reservations in the following round.
    committed = granted[0]
    scheduler.submit(Request(rid, committed, 1, Operation.COMMIT))
    scheduler.step()  # the commit itself executes in this round
    third = scheduler.step()
    newly = [
        r.ta
        for r in third.qualified
        if r.obj == EVENT_ROCK_CONCERT and r.operation is Operation.WRITE
    ]
    print(f"\nafter customer {committed} commits -> newly granted: {newly}")
    assert len(newly) == 1
    print(
        "\nthe oversell bound held throughout: never more than 3 "
        "uncommitted reservations per event, from one aggregate rule."
    )


if __name__ == "__main__":
    main()
