#!/usr/bin/env python3
"""SLA tiers: premium vs free customers, declaratively.

The paper motivates declarative scheduling with SLAs ("premium vs. free
customers in Web applications", Section 1).  This example runs the
closed-loop middleware with a 20/80 premium/free population twice —
plain SS2PL, then SS2PL wrapped in the SLA ordering layer — and prints
per-tier response times.

Run:  python examples/sla_tiers.py
"""

import repro.api as api
from repro import HybridTrigger, MiddlewareSimulation, WorkloadSpec
from repro.workload.clients import ClientPopulation, SLA_TIERS


def run(label, protocol, population, clients=40, duration=5.0):
    simulation = MiddlewareSimulation(
        protocol=protocol,
        trigger=HybridTrigger(0.02, 20),
        spec=WorkloadSpec(reads_per_txn=4, writes_per_txn=4, table_rows=2_000),
        clients=clients,
        seed=9,
        attrs_for_client=population.attributes_for,
    )
    result = simulation.run(duration)
    print(
        f"{label:24s} throughput={result.throughput:7.1f} stmt/s  "
        f"premium={result.mean_response('premium') * 1000:7.2f} ms  "
        f"free={result.mean_response('free') * 1000:7.2f} ms"
    )
    return result


def main() -> None:
    population = ClientPopulation(SLA_TIERS)
    print(f"population of 40 clients: {population.counts(40)}\n")

    base = run("ss2pl (no SLA layer)", api.make_protocol("ss2pl"), population)
    sla = run("sla(ss2pl)", api.make_protocol("sla:ss2pl"), population)

    improvement = (
        base.mean_response("premium") - sla.mean_response("premium")
    ) / base.mean_response("premium") * 100
    print(
        f"\npremium response time improved by {improvement:.0f}% — one "
        "wrapper object, zero scheduler rewrites."
    )


if __name__ == "__main__":
    main()
