"""Setup shim: allows legacy `python setup.py develop` installs in
offline environments lacking the `wheel` package (pip's PEP 517 editable
path needs bdist_wheel).  Configuration lives in pyproject.toml."""
from setuptools import setup

setup()
